"""Tests for the synthetic workload generator, profiles and suites."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import OpClass, validate_superblock
from repro.workloads import (
    GeneratorConfig,
    MEDIABENCH_PROFILES,
    SPECINT_PROFILES,
    SuperblockGenerator,
    all_kernels,
    all_profiles,
    build_benchmark,
    build_suite,
    profile_by_name,
    train_variant,
)


class TestGeneratorConfig:
    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_ops=10, max_ops=5)
        with pytest.raises(ValueError):
            GeneratorConfig(mem_fraction=0.8, fp_fraction=0.4)
        with pytest.raises(ValueError):
            GeneratorConfig(ilp=0)
        with pytest.raises(ValueError):
            GeneratorConfig(mem_fraction=1.5)


class TestSuperblockGenerator:
    def test_generated_blocks_are_valid(self):
        generator = SuperblockGenerator(GeneratorConfig(min_ops=6, max_ops=20), seed=3)
        for block in generator.generate_many("t", 20):
            validate_superblock(block)

    def test_determinism(self):
        config = GeneratorConfig(min_ops=6, max_ops=20)
        first = SuperblockGenerator(config, seed=5).generate("x", 1)
        second = SuperblockGenerator(config, seed=5).generate("x", 1)
        assert first.size == second.size
        assert [str(op) for op in first.operations] == [str(op) for op in second.operations]
        assert first.execution_count == second.execution_count

    def test_different_seeds_differ(self):
        config = GeneratorConfig(min_ops=8, max_ops=24)
        blocks_a = SuperblockGenerator(config, seed=1).generate_many("x", 5)
        blocks_b = SuperblockGenerator(config, seed=2).generate_many("x", 5)
        assert any(a.size != b.size for a, b in zip(blocks_a, blocks_b)) or any(
            str(a.operations) != str(b.operations) for a, b in zip(blocks_a, blocks_b)
        )

    def test_size_bounds_respected(self):
        config = GeneratorConfig(min_ops=10, max_ops=14, exit_every=100)
        generator = SuperblockGenerator(config, seed=7)
        for block in generator.generate_many("sized", 10):
            non_branch = sum(1 for op in block.operations if not op.is_branch)
            assert 10 <= non_branch <= 14

    def test_exit_probabilities_sum_to_one(self):
        generator = SuperblockGenerator(GeneratorConfig(exit_every=3), seed=11)
        for block in generator.generate_many("exits", 10):
            assert block.total_exit_probability == pytest.approx(1.0, abs=1e-6)

    def test_class_mix_follows_fractions(self):
        config = GeneratorConfig(min_ops=30, max_ops=30, mem_fraction=0.5, fp_fraction=0.0)
        generator = SuperblockGenerator(config, seed=13)
        blocks = generator.generate_many("mix", 10)
        mem = sum(b.count_by_class().get(OpClass.MEM, 0) for b in blocks)
        total = sum(sum(1 for op in b.operations if not op.is_branch) for b in blocks)
        assert 0.3 < mem / total < 0.7
        assert all(b.count_by_class().get(OpClass.FP, 0) == 0 for b in blocks)

    @given(st.integers(0, 2**31), st.floats(1.0, 6.0))
    @settings(max_examples=25, deadline=None)
    def test_property_any_seed_produces_valid_blocks(self, seed, ilp):
        config = GeneratorConfig(min_ops=5, max_ops=15, ilp=ilp)
        block = SuperblockGenerator(config, seed=seed).generate("prop")
        validate_superblock(block)
        assert block.exits


class TestProfiles:
    def test_fourteen_profiles(self):
        assert len(SPECINT_PROFILES) == 7
        assert len(MEDIABENCH_PROFILES) == 7
        assert len(all_profiles()) == 14
        names = [p.name for p in all_profiles()]
        assert len(set(names)) == 14

    def test_paper_benchmarks_present(self):
        for name in ("099.go", "132.ijpeg", "134.perl", "epicdec", "mpeg2enc", "rasta"):
            assert profile_by_name(name).name == name

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            profile_by_name("500.perlbench")

    def test_media_blocks_are_wider_than_spec(self):
        spec = profile_by_name("130.li").generator
        media = profile_by_name("mpeg2enc").generator
        assert media.max_ops > spec.max_ops
        assert media.ilp > spec.ilp

    def test_scaled(self):
        profile = profile_by_name("099.go").scaled(3)
        assert profile.n_blocks == 3
        assert profile.name == "099.go"

    def test_invalid_suite_rejected(self):
        from repro.workloads.profiles import BenchmarkProfile

        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", suite="desktop", generator=GeneratorConfig())


class TestSuites:
    def test_build_benchmark(self):
        workload = build_benchmark(profile_by_name("129.compress").scaled(4))
        assert workload.n_blocks == 4
        assert workload.suite == "specint"
        assert workload.total_operations > 0
        for block in workload:
            validate_superblock(block)

    def test_build_suite_subset(self):
        suite = build_suite(profiles=all_profiles()[:3], blocks_per_benchmark=2)
        assert len(suite) == 3
        assert all(w.n_blocks == 2 for w in suite)

    def test_train_variant_preserves_structure(self):
        workload = build_benchmark(profile_by_name("132.ijpeg").scaled(3))
        train = train_variant(workload)
        assert train.n_blocks == workload.n_blocks
        for ref_block, train_block in zip(workload.blocks, train.blocks):
            assert ref_block.size == train_block.size
            assert ref_block.exit_ids == train_block.exit_ids
            assert train_block.total_exit_probability == pytest.approx(1.0, abs=1e-6)

    def test_train_variant_changes_profile(self):
        workload = build_benchmark(profile_by_name("132.ijpeg").scaled(3))
        train = train_variant(workload, noise=0.5)
        changed = False
        for ref_block, train_block in zip(workload.blocks, train.blocks):
            for exit_id in ref_block.exit_ids:
                if abs(ref_block.exit_probability(exit_id) - train_block.exit_probability(exit_id)) > 1e-6:
                    changed = True
        assert changed

    def test_train_variant_deterministic(self):
        workload = build_benchmark(profile_by_name("132.ijpeg").scaled(2))
        a = train_variant(workload, seed=3)
        b = train_variant(workload, seed=3)
        for block_a, block_b in zip(a.blocks, b.blocks):
            assert block_a.execution_count == block_b.execution_count


class TestKernels:
    def test_all_kernels_valid(self):
        kernels = all_kernels()
        assert len(kernels) == 5
        for block in kernels.values():
            validate_superblock(block)

    def test_fir_requires_two_taps(self):
        from repro.workloads import fir_kernel

        with pytest.raises(ValueError):
            fir_kernel(taps=1)
