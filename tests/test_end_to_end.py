"""End-to-end property tests: random blocks, both schedulers, all machines.

The central invariant of the whole system: whatever superblock the generator
produces, both schedulers must emit schedules that pass the machine-checked
validity conditions (dependences, communications, per-cluster resources, bus
occupancy), and the proposed technique must never report an AWCT below the
dependence/resource lower bound.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import min_awct
from repro.machine import paper_2c_8i_1lat, paper_4c_16i_1lat, paper_4c_16i_2lat
from repro.scheduler import CarsScheduler, VcsConfig, VirtualClusterScheduler, validate_schedule
from repro.workloads import GeneratorConfig, SuperblockGenerator

MACHINES = [paper_2c_8i_1lat(), paper_4c_16i_1lat(), paper_4c_16i_2lat()]


def _random_block(seed: int, size: int, ilp: float):
    config = GeneratorConfig(min_ops=size, max_ops=size, ilp=ilp, exit_every=5)
    return SuperblockGenerator(config, seed=seed).generate(f"e2e/{seed}")


@given(seed=st.integers(0, 10_000), size=st.integers(5, 16), ilp=st.floats(1.5, 5.0))
@settings(max_examples=15, deadline=None)
def test_cars_schedules_random_blocks_validly(seed, size, ilp):
    block = _random_block(seed, size, ilp)
    for machine in MACHINES:
        result = CarsScheduler().schedule(block, machine)
        report = validate_schedule(result.schedule)
        assert report.ok, (block.name, machine.name, report.errors)
        assert result.awct >= min_awct(block, machine) - 1e-9


@given(seed=st.integers(0, 10_000), size=st.integers(5, 12), ilp=st.floats(1.5, 5.0))
@settings(max_examples=8, deadline=None)
def test_vcs_schedules_random_blocks_validly(seed, size, ilp):
    block = _random_block(seed, size, ilp)
    scheduler = VirtualClusterScheduler(VcsConfig(work_budget=40_000))
    for machine in MACHINES:
        result = scheduler.schedule(block, machine)
        report = validate_schedule(result.schedule)
        assert report.ok, (block.name, machine.name, report.errors)
        assert result.awct >= min_awct(block, machine) - 1e-9


@given(seed=st.integers(0, 10_000))
@settings(max_examples=6, deadline=None)
def test_vcs_with_fallback_never_loses_to_cars(seed):
    block = _random_block(seed, 10, 3.0)
    machine = paper_4c_16i_1lat()
    cars = CarsScheduler().schedule(block, machine)
    vcs = VirtualClusterScheduler(VcsConfig(work_budget=40_000)).schedule(block, machine)
    if not vcs.fallback_used:
        # A non-fallback result may occasionally be worse (the AWCT walk can
        # overshoot), but it must stay within a small factor of the baseline.
        assert vcs.awct <= cars.awct * 1.5 + 1e-9
    else:
        assert vcs.awct == pytest.approx(cars.awct)


def test_suite_smoke_all_machines():
    """A tiny fixed workload end to end on all three configurations."""
    from repro.workloads import build_benchmark, profile_by_name

    workload = build_benchmark(profile_by_name("g721dec").scaled(2))
    for machine in MACHINES:
        for block in workload.blocks:
            for scheduler in (CarsScheduler(), VirtualClusterScheduler(VcsConfig(work_budget=30_000))):
                result = scheduler.schedule(block, machine)
                assert validate_schedule(result.schedule).ok
