"""Unit tests for the scheduling state."""

import pytest

from repro.deduction import Contradiction, SchedulingState
from repro.deduction.consequence import (
    BoundChange,
    CombinationChosen,
    CommCreated,
    CycleFixed,
)
from repro.machine import example_2cluster
from repro.sgraph import SchedulingGraph
from repro.workloads import paper_figure1_block



def make_state(block=None, machine=None):
    block = block or paper_figure1_block()
    machine = machine or example_2cluster()
    return SchedulingState(block, machine, SchedulingGraph(block, machine))


class TestBounds:
    def test_initial_bounds(self):
        state = make_state()
        assert state.estart[0] == 0
        assert state.lstart[0] == float("inf")
        assert state.slack(0) == float("inf")

    def test_set_estart_monotone(self):
        state = make_state()
        changes = state.set_estart(1, 3)
        assert changes == [BoundChange(1, "estart", 3)]
        assert state.set_estart(1, 2) == []  # never decreases
        assert state.estart[1] == 3

    def test_set_lstart_and_fix(self):
        state = make_state()
        state.set_lstart(1, 5)
        changes = state.set_estart(1, 5)
        assert CycleFixed(1, 5) in changes
        assert state.is_fixed(1)
        assert state.cycle_of(1) == 5

    def test_bound_contradiction(self):
        state = make_state()
        state.set_lstart(1, 4)
        with pytest.raises(Contradiction):
            state.set_estart(1, 5)

    def test_forbid_cycle_moves_boundary(self):
        state = make_state()
        state.set_lstart(1, 5)
        state.forbid_cycle(1, 2)
        assert state.estart[1] == 3
        state.forbid_cycle(1, 5)
        assert state.lstart[1] == 4

    def test_forbid_fixed_cycle_contradicts(self):
        state = make_state()
        state.fix_cycle(1, 3)
        with pytest.raises(Contradiction):
            state.forbid_cycle(1, 3)

    def test_forbid_interior_cycle_is_noop(self):
        state = make_state()
        state.set_lstart(1, 9)
        assert state.forbid_cycle(1, 5) == []

    def test_exit_deadlines_propagate_default(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 5, block.exit_ids[1]: 7})
        assert all(state.lstart[i] != float("inf") for i in block.op_ids)

    def test_partial_exit_deadline_does_not_bound_everything(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 5})
        # The other exit keeps an unconstrained late bound.
        assert state.lstart[block.exit_ids[1]] == float("inf")

    def test_horizon(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 5, block.exit_ids[1]: 7})
        assert state.horizon == 7


class TestCombinations:
    def test_choose_discards_others_and_links_component(self):
        state = make_state()
        changes = state.choose_combination(1, 2, 0)
        assert any(isinstance(c, CombinationChosen) for c in changes)
        assert state.chosen_distance(1, 2) == 0
        assert state.remaining_combinations(1, 2) == []
        assert state.components.offset_between(1, 2) == 0
        assert state.is_pair_decided(1, 2)

    def test_choose_conflicting_distance_contradicts(self):
        state = make_state()
        state.choose_combination(1, 2, 0)
        with pytest.raises(Contradiction):
            state.choose_combination(1, 2, 1)

    def test_choose_non_combination_distance_contradicts(self):
        state = make_state()
        with pytest.raises(Contradiction):
            state.choose_combination(1, 2, 99)

    def test_discard_then_choose_contradicts(self):
        state = make_state()
        state.discard_combination(1, 2, 0)
        with pytest.raises(Contradiction):
            state.choose_combination(1, 2, 0)

    def test_choose_then_discard_contradicts(self):
        state = make_state()
        state.choose_combination(1, 2, 0)
        with pytest.raises(Contradiction):
            state.discard_combination(1, 2, 0)

    def test_discarding_all_decides_pair(self):
        state = make_state()
        for distance in list(state.remaining_combinations(1, 2)):
            state.discard_combination(1, 2, distance)
        assert state.is_pair_decided(1, 2)
        assert (1, 2) not in state.untreated_pairs()

    def test_reversed_pair_choice_normalises_distance(self):
        state = make_state()
        state.choose_combination(2, 1, 1)  # cycle(1) - cycle(2) = 1
        assert state.chosen_distance(1, 2) == -1

    def test_pair_slack_and_window(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 5, block.exit_ids[1]: 7})
        low, high = state.combination_window(1, 2, 0)
        assert low <= high
        assert state.pair_slack(1, 2) >= 0


class TestOverlapQueries:
    def test_must_overlap_requires_finite_bounds(self):
        state = make_state()
        assert not state.must_overlap(1, 2)

    def test_must_overlap_when_windows_tight(self):
        state = make_state()
        state.set_lstart(1, 2)
        state.set_lstart(2, 2)
        state.set_estart(1, 2)
        state.set_estart(2, 2)
        assert state.must_overlap(1, 2)
        assert state.can_overlap(1, 2)

    def test_can_overlap_false_when_separated(self):
        state = make_state()
        state.set_lstart(0, 0)          # I0 fixed at 0, latency 2
        state.set_estart(5, 10)
        state.set_lstart(5, 12)
        assert not state.can_overlap(0, 5)


class TestVirtualClustersAndComms:
    def test_fuse_and_incompatible(self):
        state = make_state()
        assert state.fuse_vcs(1, 2)
        assert state.same_vc(1, 2)
        assert state.mark_incompatible(1, 3)
        with pytest.raises(Contradiction):
            state.fuse_vcs(2, 3)

    def test_outedges_and_crossing_edges(self):
        block = paper_figure1_block()
        state = make_state(block)
        assert (0, 1, "v0") in state.outedges()
        state.mark_incompatible(0, 1)
        assert (0, 1, "v0") not in state.outedges()
        assert (0, 1, "v0") in state.crossing_edges()

    def test_add_flc_creates_copy_and_edges(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 6, block.exit_ids[1]: 9})
        changes = state.add_flc(0, 1, "v0")
        assert any(isinstance(c, CommCreated) for c in changes)
        comm_id = state.comm_ids[0]
        assert state.is_comm(comm_id)
        assert state.estart[comm_id] == state.estart[0] + state.latency(0)
        # successor edge from producer to the copy exists
        assert any(dst == comm_id for dst, _ in state.succ_edges(0))
        assert any(dst == 1 for dst, _ in state.succ_edges(comm_id))

    def test_add_flc_reuses_single_comm_per_value(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 6, block.exit_ids[1]: 9})
        state.add_flc(0, 1, "v0")
        before = len(state.comms)
        state.add_flc(0, 2, "v0")
        assert len(state.comms) == before  # reused, not duplicated

    def test_add_flc_without_room_contradicts(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_lstart(1, 2)  # consumer must start at cycle 2 at the latest
        with pytest.raises(Contradiction):
            state.add_flc(0, 1, "v0")

    def test_plc_lifecycle(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 6, block.exit_ids[1]: 9})
        state.add_plc(alternatives=((1, 5), (2, 5)), consumer=5)
        assert len(state.comms.partially_linked()) == 1
        comm_id = state.comm_ids[0]
        state.remove_plc_alternative(comm_id, (1, 5))
        # A single alternative remains: promoted to a fully linked copy.
        assert state.comms.get(comm_id).is_fully_linked
        assert state.comms.get(comm_id).producer == 2

    def test_plc_dropped_when_all_alternatives_removed(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 6, block.exit_ids[1]: 9})
        state.add_plc(alternatives=((1, 5),), consumer=5)
        comm_id = state.comm_ids[0]
        state.remove_plc_alternative(comm_id, (1, 5))
        assert comm_id not in state.comms
        assert not state.has_op(comm_id)

    def test_duplicate_plc_not_created(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 6, block.exit_ids[1]: 9})
        state.add_plc(alternatives=((1, 5), (2, 5)))
        assert state.add_plc(alternatives=((2, 5), (1, 5))) == []
        assert len(state.comms) == 1

    def test_drop_unresolved_plcs(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 6, block.exit_ids[1]: 9})
        state.add_plc(alternatives=((1, 5), (2, 5)))
        dropped = state.drop_unresolved_plcs()
        assert len(dropped) == 1
        assert len(state.comms) == 0

    def test_copy_is_deep_enough(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 6, block.exit_ids[1]: 9})
        clone = state.copy()
        clone.fuse_vcs(1, 2)
        clone.set_estart(1, 3)
        clone.choose_combination(1, 3, 0)
        clone.add_flc(0, 1, "v0")
        assert not state.same_vc(1, 2)
        assert state.estart[1] == 2
        assert state.chosen_distance(1, 3) is None
        assert len(state.comms) == 0


class TestSummaryMetrics:
    def test_compactness_and_slack(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 5, block.exit_ids[1]: 7})
        before = state.compactness()
        total_before = state.total_slack()
        state.set_estart(1, 3)
        assert state.compactness() > before
        assert state.total_slack() < total_before

    def test_outedge_vc_ratio_decreases_with_fusion(self):
        block = paper_figure1_block()
        state = make_state(block)
        before = state.outedge_vc_ratio()
        state.fuse_vcs(0, 1)
        assert state.outedge_vc_ratio() <= before

    def test_n_communications(self):
        block = paper_figure1_block()
        state = make_state(block)
        state.set_exit_deadlines({block.exit_ids[0]: 6, block.exit_ids[1]: 9})
        assert state.n_communications() == 0
        state.add_flc(0, 1, "v0")
        assert state.n_communications() == 1
