"""The fix-cycles fast path: probe memoization keys, candidate pruning
and the bitset-backed per-cycle capacity tables.

Three layers are covered:

- unit tests for :func:`repro.scheduler.pipeline.canonical_decision` (the
  shared probe-cache key) and :class:`repro.machine.machine.
  CycleCapacityTable` (the frozen per-cycle resource envelope);
- unit tests for :func:`repro.scheduler.candidates.prune_cycle_candidates`
  (saturated cycles are dropped, the estart always survives);
- Hypothesis properties on random superblocks asserting the two byte-level
  contracts of the knobs: ``probe_cache`` (default-on) never changes any
  observable — schedules *and* deterministic work counts, including under
  budget exhaustion — while ``prune_candidates``/``probe_early_cut``
  (opt-in) reproduce the exact same schedules with at most the oracle's
  work.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deduction.consequence import (
    ChooseCombination,
    DiscardCombination,
    ForbidCycle,
    FuseVCs,
    MarkVCsIncompatible,
    ScheduleInCycle,
    SetExitDeadlines,
)
from repro.ir.operation import OpClass
from repro.machine import (
    example_2cluster,
    paper_2c_8i_1lat,
    paper_4c_16i_1lat,
    paper_4c_16i_2lat,
)
from repro.scheduler import VcsConfig, VirtualClusterScheduler
from repro.scheduler.candidates import prune_cycle_candidates
from repro.scheduler.pipeline import canonical_decision
from repro.sgraph import SchedulingGraph
from repro.deduction import SchedulingState
from repro.workloads import GeneratorConfig, SuperblockGenerator

from tests.helpers import wide_block

MACHINES = [paper_2c_8i_1lat(), paper_4c_16i_1lat(), paper_4c_16i_2lat()]


# --------------------------------------------------------------------------- #
# canonical probe-cache keys
# --------------------------------------------------------------------------- #
class TestCanonicalDecision:
    def test_combination_orientation_normalised(self):
        # choose_combination rewrites (v, u, d) to (u, v, -d); the key must
        # identify the two spellings.
        assert canonical_decision(ChooseCombination(2, 5, 3)) == canonical_decision(
            ChooseCombination(5, 2, -3)
        )
        assert canonical_decision(DiscardCombination(7, 1, -2)) == canonical_decision(
            DiscardCombination(1, 7, 2)
        )

    def test_choose_and_discard_are_distinct(self):
        assert canonical_decision(ChooseCombination(2, 5, 3)) != canonical_decision(
            DiscardCombination(2, 5, 3)
        )

    def test_distances_are_distinct(self):
        assert canonical_decision(ChooseCombination(2, 5, 3)) != canonical_decision(
            ChooseCombination(2, 5, 4)
        )

    def test_fuse_orientation_preserved(self):
        # VCsFused(u, v) change events expose the field order, so reversed
        # fusions are NOT interchangeable and must not share a key.
        assert canonical_decision(FuseVCs.single(2, 5)) != canonical_decision(
            FuseVCs.single(5, 2)
        )
        assert canonical_decision(MarkVCsIncompatible.single(2, 5)) != canonical_decision(
            MarkVCsIncompatible.single(5, 2)
        )

    def test_pin_and_forbid_are_distinct(self):
        assert canonical_decision(ScheduleInCycle(3, 4)) != canonical_decision(
            ForbidCycle(3, 4)
        )

    def test_deadlines_sorted_by_construction(self):
        first = SetExitDeadlines.from_mapping({4: 5, 6: 7})
        second = SetExitDeadlines.from_mapping({6: 7, 4: 5})
        assert canonical_decision(first) == canonical_decision(second)


# --------------------------------------------------------------------------- #
# per-cycle capacity tables
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("machine", MACHINES + [example_2cluster()], ids=lambda m: m.name)
class TestCycleCapacityTable:
    def test_matches_per_cycle_capacity(self, machine):
        table = machine.cycle_capacity_table
        for op_class in OpClass:
            assert table.class_capacity[op_class] == machine.per_cycle_capacity(op_class)

    def test_bundles_machine_limits(self, machine):
        table = machine.cycle_capacity_table
        assert table.issue_width == machine.total_issue_width
        assert table.channels == machine.channel_count
        assert table.occupancy == machine.copy_occupancy

    def test_cached_on_the_frozen_machine(self, machine):
        assert machine.cycle_capacity_table is machine.cycle_capacity_table


# --------------------------------------------------------------------------- #
# candidate pruning
# --------------------------------------------------------------------------- #
def _pruning_state():
    machine = example_2cluster()
    capacity = machine.cycle_capacity_table.class_capacity[OpClass.INT]
    block = wide_block(width=capacity + 3, latency=1)
    state = SchedulingState(block, machine, SchedulingGraph(block, machine))
    return machine, capacity, state


class TestPruneCycleCandidates:
    def test_saturated_cycle_is_pruned(self):
        _, capacity, state = _pruning_state()
        for op_id in range(capacity):
            state.fix_cycle(op_id, 1)
        candidate = capacity  # independent INT op, estart 0
        kept, pruned = prune_cycle_candidates(state, candidate, [0, 1, 2])
        assert kept == [0, 2]
        assert pruned == 1

    def test_estart_always_survives(self):
        _, capacity, state = _pruning_state()
        for op_id in range(capacity):
            state.fix_cycle(op_id, 0)
        candidate = capacity
        assert state.estart[candidate] == 0
        kept, pruned = prune_cycle_candidates(state, candidate, [0, 1])
        assert kept == [0, 1]
        assert pruned == 0

    def test_nothing_fixed_nothing_pruned(self):
        _, capacity, state = _pruning_state()
        kept, pruned = prune_cycle_candidates(state, 0, [0, 1, 2])
        assert kept == [0, 1, 2]
        assert pruned == 0

    def test_single_candidate_untouched(self):
        _, capacity, state = _pruning_state()
        for op_id in range(capacity):
            state.fix_cycle(op_id, 3)
        kept, pruned = prune_cycle_candidates(state, capacity, [3])
        assert kept == [3]
        assert pruned == 0


# --------------------------------------------------------------------------- #
# byte-level properties on random superblocks
# --------------------------------------------------------------------------- #
def _random_block(seed: int, size: int, ilp: float):
    config = GeneratorConfig(min_ops=size, max_ops=size, ilp=ilp, exit_every=5)
    return SuperblockGenerator(config, seed=seed).generate(f"fastpath/{seed}")


def _fingerprint(result):
    schedule = result.schedule
    if schedule is None:
        body = None
    else:
        body = (
            sorted(schedule.cycles.items()),
            sorted(schedule.clusters.items()),
            [
                (c.value, c.producer, c.cycle, c.src_cluster, c.dst_cluster)
                for c in schedule.comms
            ],
        )
    return (result.awct_target_steps, result.fallback_used, body)


@given(seed=st.integers(0, 10_000), size=st.integers(5, 12), ilp=st.floats(1.5, 4.0))
@settings(max_examples=8, deadline=None)
def test_probe_cache_is_byte_identical(seed, size, ilp):
    """The default-on cache changes nothing observable: schedules, AWCT
    trajectory AND the deterministic work count are identical."""
    block = _random_block(seed, size, ilp)
    machine = paper_2c_8i_1lat()
    cached = VirtualClusterScheduler(VcsConfig(probe_cache=True)).schedule(block, machine)
    plain = VirtualClusterScheduler(VcsConfig(probe_cache=False)).schedule(block, machine)
    assert _fingerprint(cached) == _fingerprint(plain)
    assert cached.work == plain.work


@given(seed=st.integers(0, 10_000), size=st.integers(5, 12), ilp=st.floats(1.5, 4.0))
@settings(max_examples=8, deadline=None)
def test_pruning_and_early_cut_keep_schedules(seed, size, ilp):
    """The opt-in knobs reproduce the oracle's schedule exactly — same
    (score, cycle) winners everywhere — while only ever skipping work."""
    block = _random_block(seed, size, ilp)
    machine = paper_2c_8i_1lat()
    fast = VirtualClusterScheduler(
        VcsConfig(prune_candidates=True, probe_early_cut=True)
    ).schedule(block, machine)
    oracle = VirtualClusterScheduler(VcsConfig()).schedule(block, machine)
    assert _fingerprint(fast) == _fingerprint(oracle)
    assert fast.work <= oracle.work


@given(seed=st.integers(0, 10_000), budget=st.sampled_from([500, 2_000, 8_000]))
@settings(max_examples=8, deadline=None)
def test_budget_exhaustion_is_cache_compatible(seed, budget):
    """charge_block replays exhaust the budget at the same point as the
    unit-by-unit charges of a live re-deduction: with a tight budget the
    cached and uncached runs agree on everything, including whether and
    where the fallback kicked in."""
    block = _random_block(seed, 10, 3.0)
    machine = paper_4c_16i_1lat()
    cached = VirtualClusterScheduler(
        VcsConfig(probe_cache=True, work_budget=budget)
    ).schedule(block, machine)
    plain = VirtualClusterScheduler(
        VcsConfig(probe_cache=False, work_budget=budget)
    ).schedule(block, machine)
    assert _fingerprint(cached) == _fingerprint(plain)
    assert cached.work == plain.work
