"""Unit tests for estart/lstart computation, AWCT and the bound enumerator."""


import pytest

from repro.bounds import (
    ExitBoundEnumerator,
    awct,
    awct_from_schedule_cycles,
    compute_bounds,
    compute_estart,
    compute_lstart,
    min_awct,
    min_exit_cycles,
    total_cycles,
)
from repro.bounds.estart import INFINITY
from repro.machine import example_1cluster_fig4, example_2cluster, paper_2c_8i_1lat
from repro.workloads import paper_figure1_block

from tests.helpers import linear_chain_block, two_exit_block, wide_block


class TestEstartLstart:
    def test_estart_linear_chain(self):
        block = linear_chain_block(length=3, latency=2)
        estart = compute_estart(block.graph)
        assert estart[0] == 0
        assert estart[1] == 2
        assert estart[2] == 4

    def test_estart_paper_example(self):
        block = paper_figure1_block()
        estart = compute_estart(block.graph)
        # Matches Figure 4: I0=0, I1..I3=2, B0=4, I4=4, B1=6.
        assert estart[0] == 0
        assert estart[1] == estart[2] == estart[3] == 2
        assert estart[4] == 4
        assert estart[5] == 4
        assert estart[6] == 6

    def test_lstart_from_exit_bounds(self):
        block = paper_figure1_block()
        exits = block.exit_ids
        lstart = compute_lstart(block.graph, {exits[0]: 4, exits[1]: 6})
        assert lstart[exits[0]] == 4
        assert lstart[exits[1]] == 6
        assert lstart[0] == 0  # I0 on the critical path

    def test_lstart_unconstrained_ops_get_default(self):
        block = two_exit_block()
        exits = block.exit_ids
        lstart = compute_lstart(block.graph, {exits[1]: 9})
        # Every op gets a finite bound (default: the max exit bound).
        assert all(v != INFINITY for v in lstart.values())

    def test_bounds_and_slack(self):
        block = paper_figure1_block()
        exits = block.exit_ids
        bounds = compute_bounds(block, {exits[0]: 5, exits[1]: 7})
        assert bounds.slack(0) == 1
        assert not bounds.is_contradictory()
        tight = compute_bounds(block, {exits[0]: 3, exits[1]: 5})
        assert tight.is_contradictory()

    def test_bounds_copy_independent(self):
        block = paper_figure1_block()
        bounds = compute_bounds(block, {block.exit_ids[0]: 5, block.exit_ids[1]: 7})
        clone = bounds.copy()
        clone.estart[0] = 99
        assert bounds.estart[0] == 0


class TestAwct:
    def test_paper_example_value(self):
        block = paper_figure1_block()
        exits = block.exit_ids
        # Paper Section 2.2: B0 in cycle 4, B1 in cycle 6 -> AWCT = 8.4.
        assert awct(block, {exits[0]: 4, exits[1]: 6}) == pytest.approx(8.4)

    def test_awct_requires_all_exits(self):
        block = paper_figure1_block()
        with pytest.raises(KeyError):
            awct(block, {block.exit_ids[0]: 4})

    def test_awct_from_schedule_cycles(self):
        block = two_exit_block()
        cycles = {op.op_id: i for i, op in enumerate(block.operations)}
        value = awct_from_schedule_cycles(block, cycles)
        manual = sum(
            (cycles[e.op_id] + block.op(e.op_id).latency) * e.probability
            for e in block.exits
        )
        assert value == pytest.approx(manual)

    def test_min_awct_dependence_only_vs_machine(self):
        block = paper_figure1_block()
        dependence_only = min_awct(block)
        with_machine = min_awct(block, example_1cluster_fig4())
        assert with_machine >= dependence_only
        assert dependence_only == pytest.approx(8.4)

    def test_min_exit_cycles_machine_bound_dominates_dependences(self):
        block = wide_block(width=4, latency=1)
        machine = example_1cluster_fig4()
        with_machine = min_exit_cycles(block, machine)
        dependence_only = min_exit_cycles(block)
        for exit_id in block.exit_ids:
            assert with_machine[exit_id] >= dependence_only[exit_id]

    def test_min_exit_cycles_resource_bound(self):
        # Five independent latency-1 INT operations all feeding the exit: the
        # dependence bound alone allows the exit in cycle 1, but issuing five
        # INT operations at two per cycle needs three cycles, so the exit
        # cannot issue before cycle 2.
        from repro.ir import OpClass, SuperblockBuilder

        builder = SuperblockBuilder("wide5")
        values = []
        for i in range(5):
            builder.add_op("add", OpClass.INT, dests=[f"v{i}"], srcs=[f"in{i}"], latency=1)
            values.append(f"v{i}")
        builder.add_exit(probability=1.0, srcs=values, latency=1)
        block = builder.build()
        machine = example_1cluster_fig4()
        cycles = min_exit_cycles(block, machine)
        assert cycles[block.exit_ids[0]] >= 2

    def test_total_cycles(self):
        block = two_exit_block()
        assert total_cycles([(block, 10.0)]) == pytest.approx(10.0 * block.execution_count)


class TestExitBoundEnumerator:
    def test_awct_is_non_decreasing(self):
        block = paper_figure1_block()
        enumerator = ExitBoundEnumerator(block, example_2cluster())
        targets = enumerator.targets(20)
        values = [t.awct for t in targets]
        assert values == sorted(values)
        assert len(targets) == 20

    def test_first_target_is_min_exit_cycles(self):
        block = paper_figure1_block()
        machine = example_2cluster()
        enumerator = ExitBoundEnumerator(block, machine)
        first = next(iter(enumerator))
        assert first.exit_cycles == min_exit_cycles(block, machine)

    def test_targets_are_unique(self):
        block = two_exit_block()
        enumerator = ExitBoundEnumerator(block, paper_2c_8i_1lat())
        seen = set()
        for target in enumerator.targets(30):
            key = tuple(sorted(target.exit_cycles.items()))
            assert key not in seen
            seen.add(key)

    def test_every_exit_is_eventually_relaxed(self):
        block = two_exit_block()
        enumerator = ExitBoundEnumerator(block, paper_2c_8i_1lat())
        targets = enumerator.targets(40)
        start = targets[0].exit_cycles
        # Best-first enumeration explores relaxations of every exit, so the
        # maximum over targets exceeds the start for each exit.
        for exit_id in block.exit_ids:
            assert max(t.exit_cycles[exit_id] for t in targets) > start[exit_id]

    def test_inter_exit_distances_respected(self):
        block = two_exit_block()
        first, second = block.exit_ids
        distance = block.graph.min_distance(first, second) or 0
        enumerator = ExitBoundEnumerator(block, paper_2c_8i_1lat())
        for target in enumerator.targets(25):
            assert target.exit_cycles[second] >= target.exit_cycles[first] + distance

    def test_initial_cycles_override(self):
        block = paper_figure1_block()
        enumerator = ExitBoundEnumerator(
            block, example_2cluster(), initial_cycles={block.exit_ids[0]: 4, block.exit_ids[1]: 7}
        )
        first = next(iter(enumerator))
        assert first.exit_cycles[block.exit_ids[1]] == 7

    def test_max_steps_limits_iteration(self):
        block = two_exit_block()
        enumerator = ExitBoundEnumerator(block, paper_2c_8i_1lat(), max_steps=5)
        assert len(list(enumerator)) == 5
