"""Tests for the scheduler-backend registry and the decision-stage pipeline.

Covers the registry round-trips (``create(name, config)`` for every
registered backend on the paper kernels, with every backend's output
checked against the dependence/resource model), the picklable
``BackendSpec``/``VcsConfig`` configuration layer, hybrid-backend
determinism, parallel-vs-serial byte-equality for a mixed-backend batch,
and the stage pipeline's composition rules.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.machine import paper_2c_8i_1lat, paper_4c_16i_2lat, paper_configurations
from repro.runner import BatchScheduler, ScheduleJob, run_schedule_job, schedule_job_id
from repro.scheduler import (
    BackendSpec,
    CarsScheduler,
    HybridScheduler,
    UnknownBackendError,
    UnknownStageError,
    VcsConfig,
    VirtualClusterScheduler,
    available_backends,
    available_stages,
    backend_info,
    create,
    resolve_stage_order,
    validate_schedule,
)
from repro.scheduler.pipeline import (
    DEFAULT_STAGE_ORDER,
    EAGER_STAGE_ORDER,
    STAGE_EXTRACTION,
)
from repro.scheduler import candidates as cand
from repro.workloads import dot_product_kernel, fir_kernel, paper_figure1_block

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

KERNELS = [paper_figure1_block(), fir_kernel(taps=3), dot_product_kernel(width=3)]
MACHINES = [paper_2c_8i_1lat(), paper_4c_16i_2lat()]


# --------------------------------------------------------------------------- #
# registry round-trips + per-backend schedule validation
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {"cars", "vcs", "list", "hybrid"}

    def test_unknown_backend_raises(self):
        with pytest.raises(UnknownBackendError):
            create("does-not-exist")
        with pytest.raises(ValueError):  # UnknownBackendError is a ValueError
            backend_info("does-not-exist")

    @pytest.mark.parametrize("name", ["cars", "vcs", "list", "hybrid"])
    def test_create_round_trip_produces_valid_schedules(self, name):
        """Every registered backend schedules the paper kernels, and every
        schedule passes the dependence/resource correctness model."""
        backend = create(name, vcs_config=VcsConfig(work_budget=40_000))
        for machine in MACHINES:
            for block in KERNELS:
                result = backend.schedule(block, machine)
                assert result.ok, f"{name} produced no schedule for {block.name}"
                report = validate_schedule(result.schedule)
                assert report.ok, f"{name}/{block.name}: {report.errors}"

    def test_cars_and_list_validated_on_all_paper_machines(self):
        """The baselines' schedules hold up on every paper configuration
        (historically only VCS output was validated in tests)."""
        for name in ("cars", "list"):
            backend = create(name)
            for machine in paper_configurations():
                for block in KERNELS:
                    result = backend.schedule(block, machine)
                    report = validate_schedule(result.schedule)
                    assert report.ok, f"{name}/{machine.name}/{block.name}: {report.errors}"

    def test_vcs_backend_matches_direct_instantiation(self):
        """The registry's "vcs" (CARS fallback composed in) is byte-identical
        to constructing the scheduler directly."""
        block, machine = KERNELS[1], MACHINES[0]
        via_registry = create("vcs").schedule(block, machine)
        direct = VirtualClusterScheduler().schedule(block, machine)
        assert via_registry.fingerprint() == direct.fingerprint()

    def test_vcs_fallback_is_composed_backend(self):
        """With a zero budget the composed fallback produces the schedule."""
        config = VcsConfig(work_budget=0)
        result = create("vcs", vcs_config=config).schedule(KERNELS[0], MACHINES[0])
        assert result.fallback_used
        assert result.ok
        baseline = CarsScheduler().schedule(KERNELS[0], MACHINES[0])
        assert result.schedule.fingerprint() == baseline.schedule.fingerprint()


# --------------------------------------------------------------------------- #
# the picklable config layer
# --------------------------------------------------------------------------- #
class TestConfigLayer:
    def test_vcs_config_dict_round_trip(self):
        config = VcsConfig(
            work_budget=123,
            use_trail=False,
            stage_order=("combinations", "fix-cycles"),
            cycle_hints=((0, 1), (2, 5)),
        )
        assert VcsConfig.from_dict(config.to_dict()) == config

    def test_vcs_config_string_coercion(self):
        config = VcsConfig.from_dict(
            {"work_budget": "200", "use_trail": "0", "stage1_slack_limit": "1.5"}
        )
        assert config.work_budget == 200
        assert config.use_trail is False
        assert config.stage1_slack_limit == 1.5

    def test_vcs_config_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown VcsConfig keys"):
            VcsConfig.from_dict({"no_such_knob": 1})

    def test_backend_spec_round_trip_all_backends(self):
        for name in available_backends():
            spec = BackendSpec(name=name, vcs=VcsConfig(work_budget=500))
            restored = BackendSpec.from_dict(spec.to_dict())
            assert restored == spec
            assert restored.create().name  # instantiates

    def test_backend_spec_rejects_unknown_backend(self):
        with pytest.raises(UnknownBackendError):
            BackendSpec(name="nope")
        with pytest.raises(ValueError):
            BackendSpec.from_dict({"name": "nope"})

    def test_backend_spec_env_overrides(self):
        env = {"REPRO_SCHEDULER": "hybrid", "REPRO_VCS_WORK_BUDGET": "777"}
        spec = BackendSpec.from_env(env=env)
        assert spec.name == "hybrid"
        assert spec.vcs.work_budget == 777

    def test_env_overrides_coerce_sequence_fields(self):
        env = {
            "REPRO_VCS_STAGE_ORDER": "combinations,fix-cycles",
            "REPRO_VCS_CYCLE_HINTS": "0:3,2:5",
        }
        spec = BackendSpec.from_env(env=env)
        assert spec.vcs.stage_order == ("combinations", "fix-cycles")
        assert spec.vcs.cycle_hints == ((0, 3), (2, 5))
        assert resolve_stage_order(spec.vcs)[-1] == STAGE_EXTRACTION
        # Overrides stack on an explicit base without clobbering it.
        base = BackendSpec(name="vcs", vcs=VcsConfig(use_trail=False))
        spec = BackendSpec.from_env(base=base, env={"REPRO_VCS_WORK_BUDGET": "9"})
        assert spec.name == "vcs"
        assert spec.vcs.use_trail is False
        assert spec.vcs.work_budget == 9

    def test_schedule_job_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ScheduleJob(
                job_id="x",
                scheduler="not-a-backend",
                block=KERNELS[0],
                machine=MACHINES[0],
            )


# --------------------------------------------------------------------------- #
# the stage pipeline
# --------------------------------------------------------------------------- #
class TestStagePipeline:
    def test_default_and_eager_orders(self):
        assert resolve_stage_order(VcsConfig()) == DEFAULT_STAGE_ORDER
        assert resolve_stage_order(VcsConfig(eager_mapping=True)) == EAGER_STAGE_ORDER

    def test_extraction_always_appended(self):
        order = resolve_stage_order(VcsConfig(stage_order=("combinations", "fix-cycles")))
        assert order[-1] == STAGE_EXTRACTION

    def test_unknown_stage_rejected(self):
        with pytest.raises(UnknownStageError):
            resolve_stage_order(VcsConfig(stage_order=("combinations", "bogus")))

    def test_premature_extraction_rejected(self):
        """Extraction before the decision stages would silently degrade
        every block to the fallback; the pipeline refuses the order."""
        with pytest.raises(UnknownStageError, match="must come last"):
            resolve_stage_order(
                VcsConfig(stage_order=(STAGE_EXTRACTION, "combinations"))
            )

    def test_available_stages_cover_the_paper(self):
        assert tuple(available_stages()) == DEFAULT_STAGE_ORDER

    def test_explicit_paper_order_is_byte_identical_to_default(self):
        block, machine = KERNELS[0], MACHINES[0]
        default = VirtualClusterScheduler().schedule(block, machine)
        explicit = VirtualClusterScheduler(
            VcsConfig(stage_order=DEFAULT_STAGE_ORDER)
        ).schedule(block, machine)
        assert default.fingerprint() == explicit.fingerprint()

    def test_eager_flag_matches_explicit_eager_order(self):
        block, machine = KERNELS[0], MACHINES[0]
        flag = VirtualClusterScheduler(VcsConfig(eager_mapping=True)).schedule(block, machine)
        explicit = VirtualClusterScheduler(
            VcsConfig(stage_order=EAGER_STAGE_ORDER)
        ).schedule(block, machine)
        assert flag.fingerprint() == explicit.fingerprint()

    def test_stage_timings_reported(self):
        result = VirtualClusterScheduler().schedule(KERNELS[0], MACHINES[0])
        assert set(result.stage_timings) <= set(DEFAULT_STAGE_ORDER)
        assert all(entry["calls"] >= 1 for entry in result.stage_timings.values())
        # Timings never leak into the determinism fingerprint.
        assert "stage_timings" not in str(result.fingerprint())

    def test_cycle_candidate_hints(self):
        """Hints fill the non-estart slots with the nearest window cycles,
        never widen the window, keep estart probed (the ForbidCycle
        progress mechanism depends on it), and return ascending cycles
        (the winner selection is order-independent)."""
        class FakeState:
            estart = {0: 2}
            lstart = {0: 9}

        plain = cand.cycle_candidates(FakeState(), 0, 3)
        assert plain == [2, 3, 4]
        hinted = cand.cycle_candidates(FakeState(), 0, 3, hint=7)
        assert hinted == [2, 6, 7]
        assert cand.cycle_candidates(FakeState(), 0, 3, hint=0) == [2, 3, 4]
        assert cand.cycle_candidates(FakeState(), 0, 3, hint=50) == [2, 8, 9]
        # estart survives any hint, at any count.
        for hint in range(0, 12):
            for count in range(1, 5):
                assert cand.cycle_candidates(FakeState(), 0, count, hint=hint)[0] == 2


# --------------------------------------------------------------------------- #
# hybrid backend
# --------------------------------------------------------------------------- #
class TestHybridBackend:
    def test_hybrid_deterministic_across_runs(self):
        """Two independent hybrid runs are byte-identical (the CARS
        pre-pass and the seeded VCS are both deterministic)."""
        for machine in MACHINES:
            for block in KERNELS[:2]:
                first = create("hybrid").schedule(block, machine)
                second = create("hybrid").schedule(block, machine)
                assert first.fingerprint() == second.fingerprint()

    def test_hybrid_reports_pre_pass_work(self):
        block, machine = KERNELS[0], MACHINES[0]
        hybrid = create("hybrid").schedule(block, machine)
        pre = CarsScheduler().schedule(block, machine)
        vcs_hinted = VirtualClusterScheduler(
            VcsConfig(cycle_hints=tuple(sorted(pre.schedule.cycles.items())))
        ).schedule(block, machine)
        assert hybrid.scheduler == "HYBRID"
        assert hybrid.work == pre.work + vcs_hinted.work

    def test_hybrid_fallback_counts_pre_pass_once(self):
        """On budget exhaustion the CARS pre-pass schedule is reused as the
        fallback — not re-run — and its work is charged exactly once."""
        block, machine = KERNELS[0], MACHINES[0]
        pre = CarsScheduler().schedule(block, machine)
        hints = tuple(sorted(pre.schedule.cycles.items()))
        inner_only = VirtualClusterScheduler(
            VcsConfig(work_budget=0, cycle_hints=hints, fallback_to_cars=False)
        ).schedule(block, machine)
        hybrid = create("hybrid", vcs_config=VcsConfig(work_budget=0)).schedule(block, machine)
        assert hybrid.fallback_used
        assert hybrid.work == inner_only.work + pre.work
        assert hybrid.schedule.fingerprint() == pre.schedule.fingerprint()

    def test_hybrid_seeder_is_pluggable(self):
        block, machine = KERNELS[0], MACHINES[0]
        result = HybridScheduler(seeder=create("list")).schedule(block, machine)
        assert result.ok
        assert validate_schedule(result.schedule).ok


# --------------------------------------------------------------------------- #
# mixed-backend batches through the parallel runner
# --------------------------------------------------------------------------- #
class TestMixedBackendBatches:
    @staticmethod
    def _jobs():
        config = VcsConfig(work_budget=40_000)
        jobs = []
        machine = MACHINES[0]
        for index, block in enumerate(KERNELS[:2]):
            for backend in ("cars", "list", "vcs", "hybrid"):
                jobs.append(
                    ScheduleJob(
                        job_id=schedule_job_id(backend, "mixed", machine.name, index, block.name),
                        scheduler=backend,
                        block=block,
                        machine=machine,
                        vcs_config=(
                            config if backend_info(backend).uses_vcs_config else None
                        ),
                    )
                )
        return jobs

    def test_parallel_equals_serial_for_mixed_backends(self):
        jobs = self._jobs()
        serial = BatchScheduler(jobs=1).map(run_schedule_job, jobs)
        parallel = BatchScheduler(jobs=2, chunk_size=1).map(run_schedule_job, jobs)
        assert serial.ok and parallel.ok
        serial_fps = [result.fingerprint() for result in serial.values]
        parallel_fps = [result.fingerprint() for result in parallel.values]
        assert serial_fps == parallel_fps

    def test_worker_validates_every_backend_schedule(self):
        """check_schedule=True runs the correctness model inside the worker
        for every backend kind (no exception = every schedule valid)."""
        for job, result in zip(self._jobs(), map(run_schedule_job, self._jobs())):
            assert result.ok, job.job_id


# --------------------------------------------------------------------------- #
# CLI discovery flags (satellite: --list-schedulers / --list-machines)
# --------------------------------------------------------------------------- #
class TestRunSuiteCli:
    @staticmethod
    def _run(*argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "scripts", "run_suite.py"), *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )

    def test_list_schedulers(self):
        proc = self._run("--list-schedulers")
        assert proc.returncode == 0
        for name in ("cars", "vcs", "list", "hybrid"):
            assert name in proc.stdout

    def test_list_machines(self):
        proc = self._run("--list-machines")
        assert proc.returncode == 0
        assert "2clust 1b 1lat" in proc.stdout

    def test_unknown_scheduler_exits_nonzero(self):
        proc = self._run("--scheduler", "nope")
        assert proc.returncode != 0
        assert "unknown scheduler" in proc.stderr

    def test_unknown_machine_exits_nonzero(self):
        proc = self._run("--machines", "nope")
        assert proc.returncode != 0
        assert "unknown machine" in proc.stderr

    def test_unknown_stage_exits_nonzero(self):
        proc = self._run("--stages", "combinations,bogus")
        assert proc.returncode != 0
        assert "unknown stage" in proc.stderr
