"""Tests for the deduction engine, its rules and the work budget."""

import pytest

from repro.deduction import (
    BudgetExhausted,
    ChooseCombination,
    DeductionProcess,
    DiscardCombination,
    ForbidCycle,
    FuseVCs,
    MarkVCsIncompatible,
    PinVCs,
    ScheduleInCycle,
    SchedulingState,
    SetExitDeadlines,
    WorkBudget,
)
from repro.deduction.rules import default_rules
from repro.machine import example_2cluster, paper_4c_16i_2lat
from repro.sgraph import SchedulingGraph
from repro.workloads import paper_figure1_block



def fresh_state(block=None, machine=None):
    block = block or paper_figure1_block()
    machine = machine or example_2cluster()
    return block, machine, SchedulingState(block, machine, SchedulingGraph(block, machine))


class TestWorkBudget:
    def test_unlimited_budget_never_raises(self):
        budget = WorkBudget(None)
        for _ in range(1000):
            budget.charge()
        assert budget.remaining is None
        assert not budget.exhausted()

    def test_budget_exhaustion(self):
        budget = WorkBudget(5)
        for _ in range(5):
            budget.charge()
        assert budget.exhausted()
        with pytest.raises(BudgetExhausted):
            budget.charge()

    def test_remaining(self):
        budget = WorkBudget(10)
        budget.charge(4)
        assert budget.remaining == 6


class TestEngineBasics:
    def test_apply_copies_by_default(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        result = dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        assert result.ok
        assert result.state is not state
        assert state.lstart[0] == float("inf")  # original untouched

    def test_apply_in_place(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        result = dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7}), in_place=True)
        assert result.state is state

    def test_contradiction_reported_not_raised(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        result = dp.apply(state, SetExitDeadlines.from_mapping({4: 4, 6: 6}))
        assert not result.ok
        assert isinstance(result.contradiction, str)

    def test_work_and_consequences_counted(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        result = dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        assert result.work > 0
        assert len(result.consequences) > 0

    def test_budget_propagates(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        with pytest.raises(BudgetExhausted):
            dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7}), budget=WorkBudget(3))

    def test_unknown_decision_type_rejected(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()

        class Bogus:
            pass

        with pytest.raises(TypeError):
            dp.apply(state, Bogus())

    def test_invocation_counter(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        assert dp.invocations == 2


class TestDecisionExpansion:
    def test_schedule_in_cycle(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7})).state
        result = dp.apply(base, ScheduleInCycle(0, 0))
        assert result.ok
        assert result.state.is_fixed(0)

    def test_forbid_cycle(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 6, 6: 9})).state
        result = dp.apply(base, ForbidCycle(0, base.estart[0]))
        assert result.ok
        assert result.state.estart[0] == base.estart[0] + 1

    def test_forbid_cycle_without_slack_contradicts(self):
        """At the tight AWCT target, pushing I0 off cycle 0 leaves no valid
        schedule: three 2-cycle operations would have to share cycle 3 on a
        machine with two integer units."""
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7})).state
        result = dp.apply(base, ForbidCycle(0, base.estart[0]))
        assert not result.ok

    def test_choose_and_discard_combination(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7})).state
        chosen = dp.apply(base, ChooseCombination(1, 2, 1))
        assert chosen.ok
        assert chosen.state.chosen_distance(1, 2) == 1
        discarded = dp.apply(base, DiscardCombination(1, 2, 1))
        assert discarded.ok
        assert 1 in discarded.state.discarded_distances(1, 2)

    def test_fuse_and_incompatible_decisions(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 6, 6: 9})).state
        fused = dp.apply(base, FuseVCs.single(1, 2))
        assert fused.ok and fused.state.same_vc(1, 2)
        split = dp.apply(base, MarkVCsIncompatible.single(1, 2))
        assert split.ok and split.state.vcg.are_incompatible(1, 2)

    def test_pin_decision(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        result = dp.apply(state, PinVCs(pins=((0, 1),)))
        assert result.ok
        assert result.state.vcg.pin_of(0) == 1


class TestRuleDeductions:
    def test_bound_propagation_forward_and_backward(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        result = dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        s = result.state
        # Forward: successors of I0 cannot start before its latency.
        assert s.estart[5] >= s.estart[1] + 2
        # Backward: producers must leave room for their consumers.
        assert s.lstart[0] <= s.lstart[3] - 2

    def test_paper_example_b1_at_6_contradicts(self):
        """Section 5: with B0 at 4, B1 cannot be scheduled in cycle 6."""
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        result = dp.apply(state, SetExitDeadlines.from_mapping({4: 4, 6: 6}))
        assert not result.ok

    def test_paper_example_forced_fusion(self):
        """Section 5 / Figure 9.c: with B0 at 4 and B1 at 7, I0, I3 and B0
        end up in the same virtual cluster because no communication fits."""
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        result = dp.apply(state, SetExitDeadlines.from_mapping({4: 4, 6: 7}))
        assert result.ok
        s = result.state
        assert s.same_vc(0, 3)
        assert s.same_vc(3, 4)

    def test_must_overlap_forces_single_remaining_combination(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 6, 6: 9})).state
        # Fix I1 and I2 to the same cycle 3 (cycle 2 would leave no room for
        # a copy of v0, forcing both into I0's cluster); they must overlap,
        # only distance 0 remains, so the deduction must choose it and split
        # their virtual clusters.
        step = dp.apply(base, ScheduleInCycle(1, 3))
        assert step.ok
        step2 = dp.apply(step.state, ScheduleInCycle(2, 3))
        assert step2.ok
        assert step2.state.chosen_distance(1, 2) == 0
        assert step2.state.vcg.are_incompatible(1, 2)

    def test_same_cycle_infeasible_at_tight_target(self):
        """At the tight target the same two placements contradict: both
        consumers of v0 would have to share I0's cluster (no room for a
        copy), which a single integer unit per cluster cannot issue — the
        reasoning of the paper's Section 5 example."""
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7})).state
        step = dp.apply(base, ScheduleInCycle(1, 2))
        assert step.ok
        step2 = dp.apply(step.state, ScheduleInCycle(2, 2))
        assert not step2.ok

    def test_same_cycle_same_class_capacity_one_marks_incompatible(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7})).state
        step = dp.apply(base, ChooseCombination(1, 2, 0))
        assert step.ok
        assert step.state.vcg.are_incompatible(1, 2)

    def test_machine_wide_capacity_contradiction(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 6, 6: 9})).state
        one = dp.apply(base, ScheduleInCycle(1, 2)).state
        two = dp.apply(one, ScheduleInCycle(2, 2)).state
        third = dp.apply(two, ScheduleInCycle(3, 2))
        # Only two INT units exist machine-wide on the example machine.
        assert not third.ok

    def test_incompatibility_inserts_communication(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 6, 6: 9})).state
        result = dp.apply(base, MarkVCsIncompatible.single(0, 1))
        assert result.ok
        comms = result.state.comms.fully_linked()
        assert any(c.value == "v0" and c.consumer == 1 for c in comms)

    def test_rule1_no_room_for_copy_forces_fusion(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 4, 6: 7})).state
        # Already verified above that I0/I3/B0 are fused via rule 1.
        assert base.same_vc(0, 3)

    def test_fusing_incompatible_is_contradiction(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 6, 6: 9})).state
        split = dp.apply(base, MarkVCsIncompatible.single(1, 2)).state
        result = dp.apply(split, FuseVCs.single(1, 2))
        assert not result.ok

    def test_bus_contention_detected_on_non_pipelined_bus(self):
        block = paper_figure1_block()
        machine = paper_4c_16i_2lat()
        state = SchedulingState(block, machine, SchedulingGraph(block, machine))
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 6, 6: 8})).state
        # Force two values to need copies with overlapping, fully pinned
        # windows: the engine must refuse at least one of the attempts or
        # keep the bus conflict-free.
        first = dp.apply(base, MarkVCsIncompatible.single(0, 1))
        assert first.ok
        state1 = first.state
        comm_ids = state1.comm_ids
        assert comm_ids
        pin = dp.apply(state1, ScheduleInCycle(comm_ids[0], state1.estart[comm_ids[0]]))
        assert pin.ok

    def test_plc_created_for_common_consumer_of_incompatible_vcs(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 6, 6: 9})).state
        result = dp.apply(base, MarkVCsIncompatible.single(1, 2))
        assert result.ok
        # I1 and I2 share consumer I4 (op 5): a partially linked copy to it
        # must be anticipated.
        partial = result.state.comms.partially_linked()
        assert any(set(c.possible_consumers()) == {5} for c in partial)

    def test_plc_rules_can_be_disabled(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess(rules=default_rules(enable_plc=False))
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 6, 6: 9})).state
        result = dp.apply(base, MarkVCsIncompatible.single(1, 2))
        assert result.ok
        assert result.state.comms.partially_linked() == []

    def test_plc_promoted_on_fusion_rule6(self):
        block, machine, state = fresh_state()
        dp = DeductionProcess()
        base = dp.apply(state, SetExitDeadlines.from_mapping({4: 6, 6: 9})).state
        split = dp.apply(base, MarkVCsIncompatible.single(1, 2)).state
        fused = dp.apply(split, FuseVCs.single(1, 5))
        assert fused.ok
        # The alternative (1 -> 5) is now local, so the copy is assigned to
        # the other producer (rule 6): it becomes fully linked from I2.
        flcs = fused.state.comms.fully_linked()
        assert any(c.producer == 2 and c.consumer == 5 for c in flcs)
