"""Tests for the content-addressed result cache (``repro.runner.cache``).

The invariant under test: a cache **hit** is byte-identical to a cold
compute — same schedule fingerprint, same deterministic work counter,
same stats dict — for any (block, machine, backend) triple, because the
cache key covers exactly the inputs the scheduler's determinism is
stated over.  Alongside it: invalidation on the code-version salt,
atomicity under concurrent writers, corrupt-entry recovery, and the
environment knobs (``REPRO_CACHE``/``REPRO_CACHE_DIR``).
"""

import multiprocessing
import os
import pickle
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import paper_2c_8i_1lat, paper_4c_16i_1lat, paper_4c_16i_2lat
from repro.api import schedule_many
from repro.runner import (
    BatchScheduler,
    CacheSpec,
    CacheStats,
    ResultCache,
    cache_enabled,
    default_cache_dir,
    enumerate_workload_jobs,
)
from repro.scheduler import VcsConfig, block_digest, machine_digest, schedule_cache_key
from repro.workloads import GeneratorConfig, SuperblockGenerator

MACHINES = {
    "2c": paper_2c_8i_1lat,
    "4c-1lat": paper_4c_16i_1lat,
    "4c-2lat": paper_4c_16i_2lat,
}


def _random_block(seed: int, size: int, ilp: float):
    config = GeneratorConfig(min_ops=size, max_ops=size, ilp=ilp, exit_every=5)
    return SuperblockGenerator(config, seed=seed).generate(f"cache/{seed}")


def _jobs_for(block, machine, scheduler):
    return enumerate_workload_jobs(
        "cache-test",
        [block],
        machine,
        vcs_config=VcsConfig(work_budget=20_000),
        schedulers=[scheduler],
    )


# --------------------------------------------------------------------------- #
# the round-trip property
# --------------------------------------------------------------------------- #
@given(
    seed=st.integers(0, 10_000),
    size=st.integers(5, 14),
    ilp=st.floats(1.5, 5.0),
    machine_key=st.sampled_from(sorted(MACHINES)),
    scheduler=st.sampled_from(["cars", "vcs"]),
)
@settings(max_examples=10, deadline=None)
def test_cache_hit_is_byte_identical_to_cold_compute(
    seed, size, ilp, machine_key, scheduler
):
    block = _random_block(seed, size, ilp)
    machine = MACHINES[machine_key]()
    jobs = _jobs_for(block, machine, scheduler)
    with tempfile.TemporaryDirectory() as root:
        spec = CacheSpec(root=root)
        cold = schedule_many(jobs, cache=spec)
        warm = schedule_many(jobs, cache=spec)
    uncached = schedule_many(jobs, cache=CacheSpec.disabled())

    assert cold.cache.hits == 0 and cold.cache.stores == 1
    assert warm.cache.hits == 1 and warm.cache.misses == 0
    for a, b in zip(cold.values + uncached.values, warm.values):
        assert a.fingerprint() == b.fingerprint()
        assert a.work == b.work
        assert a.stats == b.stats


# --------------------------------------------------------------------------- #
# keying and invalidation
# --------------------------------------------------------------------------- #
class TestCacheKey:
    def test_key_discriminates_every_coordinate(self):
        block_a = _random_block(1, 8, 2.0)
        block_b = _random_block(2, 8, 2.0)
        machine = paper_2c_8i_1lat()
        job = _jobs_for(block_a, machine, "vcs")[0]
        spec_dict = job.spec.to_dict()
        base = schedule_cache_key(block_a, machine, spec_dict)
        assert base == schedule_cache_key(block_a, machine, spec_dict)
        assert base != schedule_cache_key(block_b, machine, spec_dict)
        assert base != schedule_cache_key(block_a, paper_4c_16i_1lat(), spec_dict)
        other_spec = _jobs_for(block_a, machine, "cars")[0].spec.to_dict()
        assert base != schedule_cache_key(block_a, machine, other_spec)

    def test_salt_change_invalidates(self, tmp_path):
        block = _random_block(7, 8, 2.5)
        machine = paper_2c_8i_1lat()
        jobs = _jobs_for(block, machine, "cars")
        root = str(tmp_path)
        first = schedule_many(jobs, cache=CacheSpec(root=root, salt="v1"))
        stale = schedule_many(jobs, cache=CacheSpec(root=root, salt="v2"))
        fresh = schedule_many(jobs, cache=CacheSpec(root=root, salt="v1"))
        # A new code-version salt never reads old entries...
        assert stale.cache.hits == 0 and stale.cache.stores == 1
        # ...and the old salt's entries are still intact.
        assert fresh.cache.hits == 1
        assert first.values[0].fingerprint() == stale.values[0].fingerprint()

    def test_digest_helpers_are_stable(self):
        block = _random_block(3, 8, 2.0)
        machine = paper_4c_16i_2lat()
        assert block_digest(block) == block_digest(block)
        assert machine_digest(machine) == machine_digest(machine)
        assert block_digest(block) != block_digest(_random_block(4, 8, 2.0))


# --------------------------------------------------------------------------- #
# atomicity and corruption
# --------------------------------------------------------------------------- #
def _store_same_key(args):
    """Worker: open the cache and store *value* under *key*."""
    root, key, value = args
    cache = ResultCache(root)
    cache.put(key, value)
    return cache.get(key)


class TestAtomicity:
    def test_concurrent_writers_same_key(self, tmp_path):
        """Two processes racing to store the same key must both leave the
        entry readable — the atomic tmp-rename protocol guarantees a
        reader never observes a partial write."""
        root = str(tmp_path)
        key = "ab" + "0" * 62
        payload = {"answer": list(range(1000))}
        with multiprocessing.get_context("spawn").Pool(2) as pool:
            results = pool.map(
                _store_same_key, [(root, key, payload), (root, key, payload)]
            )
        assert results == [payload, payload]
        assert ResultCache(root).get(key) == payload

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "cd" + "1" * 62
        cache.put(key, {"ok": True})
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists(), "corrupt entries must be evicted"
        assert cache.get(key) is None

    def test_put_then_get_round_trips_pickle_exactly(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "ef" + "2" * 62
        value = {"nested": [1, (2, 3), {"x": 4.5}]}
        cache.put(key, value)
        raw = pickle.loads(cache._path(key).read_bytes())
        assert raw == value == cache.get(key)
        assert key in cache


# --------------------------------------------------------------------------- #
# stats and environment knobs
# --------------------------------------------------------------------------- #
class TestStatsAndEnv:
    def test_stats_accounting(self):
        stats = CacheStats()
        stats.record("hit")
        stats.record("miss")
        stats.record("off")
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.lookups == 2 and stats.hit_rate == 0.5
        other = CacheStats(hits=3)
        stats.merge(other)
        assert stats.hits == 4
        assert stats.to_dict()["hits"] == 4

    def test_cache_enabled_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled()
        for off in ("off", "0", "false", "no"):
            monkeypatch.setenv("REPRO_CACHE", off)
            assert not cache_enabled()

    def test_spec_from_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        spec = CacheSpec.from_env()
        assert spec.enabled and spec.root == str(tmp_path)
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert not CacheSpec.from_env().enabled
        assert not CacheSpec.disabled().enabled

    def test_default_dir_under_home_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert str(default_cache_dir()).endswith(os.path.join(".cache", "repro"))


# --------------------------------------------------------------------------- #
# cache + parallel runner
# --------------------------------------------------------------------------- #
class TestParallelCache:
    def test_warm_hits_cross_process_boundary(self, tmp_path):
        """Results stored by a serial run must be served as hits to pool
        workers (the spec travels in the payload, not the environment)."""
        block = _random_block(11, 10, 3.0)
        machine = paper_2c_8i_1lat()
        jobs = _jobs_for(block, machine, "cars") + _jobs_for(block, machine, "vcs")
        spec = CacheSpec(root=str(tmp_path))
        cold = schedule_many(jobs, cache=spec)
        warm = schedule_many(
            jobs, runner=BatchScheduler(jobs=2, persistent=False), cache=spec
        )
        assert cold.cache.stores == len(jobs)
        assert warm.cache.hits == len(jobs) and warm.cache.misses == 0
        for a, b in zip(cold.values, warm.values):
            assert a.fingerprint() == b.fingerprint()
            assert a.stats == b.stats
