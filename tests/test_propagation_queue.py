"""Tiered propagation queue, rule registration and probe memoization.

Covers the incremental propagation core: the deduplicating tiered worklist
(same fixed point as the FIFO oracle, asserted with Hypothesis on random
superblocks), the engine's explicit rule-registration hooks, the
per-rule-class work split, and the trail-aware probe cache (byte-identical
schedules with and without it, exact work accounting on replays).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.deduction import DeductionProcess, SchedulingState, WorkBudget
from repro.deduction.consequence import (
    BoundChange,
    CombinationDiscarded,
    CycleFixed,
    SetExitDeadlines,
    VCsFused,
)
from repro.deduction.engine import BudgetExhausted
from repro.deduction.queue import (
    FifoPropagationQueue,
    TieredPropagationQueue,
    make_queue,
    new_queue_stats,
)
from repro.deduction.rules import default_rules
from repro.deduction.rules.base import Rule
from repro.machine import example_2cluster, paper_2c_8i_1lat
from repro.scheduler import VcsConfig, VirtualClusterScheduler
from repro.scheduler.correctness import validate_schedule
from repro.sgraph import SchedulingGraph
from repro.workloads import dct_butterfly_kernel, fir_kernel, paper_figure1_block
from repro.workloads.synth import GeneratorConfig, SuperblockGenerator


# --------------------------------------------------------------------------- #
# queue unit behaviour
# --------------------------------------------------------------------------- #
class TestQueues:
    def test_fifo_order(self):
        queue = FifoPropagationQueue()
        changes = [BoundChange(1, "estart", 2), CycleFixed(2, 3), BoundChange(1, "estart", 4)]
        queue.push_many(changes)
        assert [queue.pop() for _ in range(3)] == changes
        assert not queue

    def test_tiered_pops_bound_events_first(self):
        queue = TieredPropagationQueue()
        fused = VCsFused(1, 2)
        discarded = CombinationDiscarded(1, 2, 0)
        bound = BoundChange(3, "estart", 1)
        queue.push_many([fused, discarded, bound])
        assert queue.pop() is bound
        assert queue.pop() is discarded
        assert queue.pop() is fused
        assert not queue

    def test_tiered_is_fifo_within_a_tier(self):
        queue = TieredPropagationQueue()
        first = BoundChange(1, "estart", 1)
        second = CycleFixed(2, 5)
        third = BoundChange(3, "lstart", 9)
        queue.push_many([first, second, third])
        assert [queue.pop() for _ in range(3)] == [first, second, third]

    def test_tiered_coalesces_pending_bound_events(self):
        stats = new_queue_stats()
        queue = TieredPropagationQueue(stats)
        queue.push_many([BoundChange(1, "estart", 2)])
        # Same operation and side while the first event is pending: dropped.
        queue.push_many([BoundChange(1, "estart", 5)])
        # Other side / other operation: kept.
        queue.push_many([BoundChange(1, "lstart", 9), BoundChange(2, "estart", 5)])
        assert stats["queue_coalesced"] == 1
        assert stats["queue_pushed"] == 3
        assert len(queue) == 3
        popped = queue.pop()
        assert popped == BoundChange(1, "estart", 2)
        # Once popped, the key is free again.
        queue.push_many([BoundChange(1, "estart", 7)])
        assert stats["queue_coalesced"] == 1

    def test_make_queue(self):
        assert isinstance(make_queue("fifo"), FifoPropagationQueue)
        assert isinstance(make_queue("tiered"), TieredPropagationQueue)
        with pytest.raises(ValueError, match="unknown queue mode"):
            make_queue("lifo")

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            TieredPropagationQueue().pop()


# --------------------------------------------------------------------------- #
# rule registration hooks
# --------------------------------------------------------------------------- #
class _CountingRule(Rule):
    triggers = (BoundChange, CycleFixed)

    def __init__(self):
        self.fired = 0

    def fire(self, state, change):
        self.fired += 1
        return []


def _bounded(block=None, machine=None):
    block = block or paper_figure1_block()
    machine = machine or example_2cluster()
    return block, SchedulingState(block, machine, SchedulingGraph(block, machine))


class TestRuleRegistration:
    def test_rules_view_is_immutable(self):
        dp = DeductionProcess()
        assert isinstance(dp.rules, tuple)
        with pytest.raises(AttributeError):
            dp.rules.append(_CountingRule())  # type: ignore[attr-defined]

    def test_add_rule_invalidates_dispatch(self):
        block, state = _bounded()
        dp = DeductionProcess()
        # Populate the dispatch table first.
        dp.apply(state.copy(), SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        extra = _CountingRule()
        dp.add_rule(extra)
        dp.apply(state.copy(), SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        assert extra.fired > 0
        assert extra in dp.rules

    def test_remove_rule_invalidates_dispatch(self):
        block, state = _bounded()
        extra = _CountingRule()
        dp = DeductionProcess(rules=default_rules() + [extra])
        dp.apply(state.copy(), SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        fired_before = extra.fired
        assert fired_before > 0
        dp.remove_rule(extra)
        dp.apply(state.copy(), SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        assert extra.fired == fired_before
        assert extra not in dp.rules

    def test_rules_assignment_uses_registration(self):
        block, state = _bounded()
        dp = DeductionProcess()
        dp.apply(state.copy(), SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        extra = _CountingRule()
        dp.rules = [extra]
        dp.apply(state.copy(), SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        assert dp.rules == (extra,)
        assert extra.fired > 0

    def test_work_by_rule_sums_to_total_work(self):
        block, state = _bounded()
        dp = DeductionProcess()
        result = dp.apply(state, SetExitDeadlines.from_mapping({4: 5, 6: 7}))
        assert result.work > 0
        assert sum(dp.work_by_rule.values()) == result.work
        assert all(
            name.endswith("Rule") or name.endswith("Propagation") for name in dp.work_by_rule
        )

    def test_unknown_queue_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown queue mode"):
            DeductionProcess(queue_mode="lifo")


# --------------------------------------------------------------------------- #
# tiered vs FIFO: same fixed point
# --------------------------------------------------------------------------- #
def core_fixed_point(state: SchedulingState):
    """The order-independent core of a deduction fixed point.

    Communication ids depend on rule-firing order (ids are allocated as
    copies are created), so the comparison is over the original operations'
    bounds, the combination decisions, the component offsets, the VC
    partition and the set of fully linked communicated values."""
    originals = state.original_ids
    return (
        {i: state.estart[i] for i in originals},
        {i: state.lstart[i] for i in originals},
        state.chosen_combinations(),
        {k: frozenset(v) for k, v in state._discarded.items() if v},
        state.components.components(),
        state.vcg.vcs(),
        state.vcg.incompatibility_pairs(),
        sorted((c.value, c.producer, c.consumer) for c in state.comms.fully_linked()),
    )


@st.composite
def deduction_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=60))
    slack = draw(st.integers(min_value=0, max_value=6))
    gen = SuperblockGenerator(GeneratorConfig(min_ops=8, max_ops=16), seed=seed)
    block = gen.generate(name=f"queue-fp-{seed}")
    return block, slack


class TestTieredFixedPoint:
    @settings(max_examples=30, deadline=None)
    @given(deduction_cases())
    def test_same_fixed_point_as_fifo(self, case):
        block, slack = case
        machine = paper_2c_8i_1lat()
        sgraph = SchedulingGraph(block, machine)
        base = SchedulingState(block, machine, sgraph)
        deadline = max(base.estart[e] for e in block.exit_ids) + slack
        decision = SetExitDeadlines.from_mapping({e: deadline for e in block.exit_ids})

        results = {}
        for mode in ("fifo", "tiered"):
            dp = DeductionProcess(queue_mode=mode)
            state = SchedulingState(block, machine, sgraph)
            results[mode] = dp.apply(state, decision, in_place=True)

        assert results["fifo"].ok == results["tiered"].ok
        if results["fifo"].ok:
            assert core_fixed_point(results["fifo"].state) == core_fixed_point(
                results["tiered"].state
            )

    def test_tiered_scheduler_produces_valid_schedules(self):
        machine = paper_2c_8i_1lat()
        scheduler = VirtualClusterScheduler(VcsConfig(queue_mode="tiered"))
        for block in (paper_figure1_block(), fir_kernel(taps=3), dct_butterfly_kernel()):
            result = scheduler.schedule(block, machine)
            assert result.ok
            assert validate_schedule(result.schedule).ok
            assert result.stats["queue_pushed"] > 0

    def test_tiered_scheduler_is_deterministic(self):
        machine = paper_2c_8i_1lat()
        block = dct_butterfly_kernel()
        runs = [
            VirtualClusterScheduler(VcsConfig(queue_mode="tiered")).schedule(block, machine)
            for _ in range(2)
        ]
        assert runs[0].work == runs[1].work
        assert runs[0].schedule.fingerprint() == runs[1].schedule.fingerprint()

    def test_queue_mode_config_coercion(self):
        assert VcsConfig.from_dict({"queue_mode": "TIERED"}).queue_mode == "tiered"
        with pytest.raises(ValueError, match="queue_mode"):
            VcsConfig.from_dict({"queue_mode": "lifo"})
        round_tripped = VcsConfig.from_dict(VcsConfig(queue_mode="tiered").to_dict())
        assert round_tripped.queue_mode == "tiered"


# --------------------------------------------------------------------------- #
# probe memoization
# --------------------------------------------------------------------------- #
class TestProbeCache:
    def test_cache_on_off_byte_identical(self):
        machine = paper_2c_8i_1lat()
        for block in (paper_figure1_block(), fir_kernel(taps=3), dct_butterfly_kernel()):
            with_cache = VirtualClusterScheduler(VcsConfig(probe_cache=True))
            without_cache = VirtualClusterScheduler(VcsConfig(probe_cache=False))
            cached = with_cache.schedule(block, machine)
            uncached = without_cache.schedule(block, machine)
            assert cached.work == uncached.work
            assert cached.awct_target_steps == uncached.awct_target_steps
            assert cached.schedule.fingerprint() == uncached.schedule.fingerprint()
            assert uncached.stats["probe_cache_hits"] == 0

    def test_single_exit_block_hits_the_cache(self):
        """The minAWCT tightening probe of a single-exit block memoizes the
        deadline deduction the first AWCT target re-applies."""
        block = fir_kernel(taps=3)
        assert len(block.exit_ids) == 1
        result = VirtualClusterScheduler().schedule(block, paper_2c_8i_1lat())
        assert result.ok
        assert result.stats["probe_cache_hits"] >= 1

    def test_rule_split_sums_to_dp_work_across_cache_hits(self):
        """Replayed deductions re-credit their per-rule-class share, so the
        reported dp_rule_* split always sums to the gated dp_work total."""
        for block in (fir_kernel(taps=3), paper_figure1_block()):
            result = VirtualClusterScheduler().schedule(block, paper_2c_8i_1lat())
            assert result.ok
            split = {k: v for k, v in result.stats.items() if k.startswith("dp_rule_")}
            assert sum(split.values()) == result.work

    def test_copy_mode_never_uses_the_cache(self):
        scheduler = VirtualClusterScheduler(VcsConfig(use_trail=False, probe_cache=True))
        result = scheduler.schedule(fir_kernel(taps=3), paper_2c_8i_1lat())
        assert result.ok
        assert result.stats["probe_cache_hits"] == 0
        assert result.stats["probe_cache_misses"] == 0

    def test_charge_block_matches_unit_charges(self):
        limit = 10
        unit = WorkBudget(limit)
        block_budget = WorkBudget(limit)
        for _ in range(7):
            unit.charge()
        block_budget.charge_block(7)
        assert unit.spent == block_budget.spent == 7
        with pytest.raises(BudgetExhausted):
            for _ in range(7):
                unit.charge()
        with pytest.raises(BudgetExhausted):
            block_budget.charge_block(7)
        assert unit.spent == block_budget.spent == limit + 1

    def test_budget_exhaustion_identical_with_and_without_cache(self):
        block = dct_butterfly_kernel()
        machine = paper_2c_8i_1lat()
        for budget in (50, 500, 5000):
            runs = []
            for flag in (True, False):
                config = VcsConfig(work_budget=budget, probe_cache=flag)
                runs.append(VirtualClusterScheduler(config).schedule(block, machine))
            assert runs[0].work == runs[1].work, budget
            assert runs[0].timed_out == runs[1].timed_out
            assert runs[0].fallback_used == runs[1].fallback_used
            if runs[0].ok and runs[1].ok:
                assert runs[0].schedule.fingerprint() == runs[1].schedule.fingerprint()
