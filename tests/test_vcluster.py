"""Unit tests for virtual clusters, mapping and communications."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vcluster import (
    CommKind,
    Communication,
    CommunicationSet,
    VCContradiction,
    VirtualClusterGraph,
    greedy_coloring,
    has_clique_larger_than,
    map_virtual_to_physical,
    required_clusters_estimate,
)


class TestVirtualClusterGraph:
    def test_initially_one_vc_per_op(self):
        vcg = VirtualClusterGraph(range(4))
        assert vcg.n_vcs == 4
        assert vcg.vcs() == [frozenset({0}), frozenset({1}), frozenset({2}), frozenset({3})]

    def test_fuse_merges(self):
        vcg = VirtualClusterGraph(range(4))
        assert vcg.fuse(0, 1) is True
        assert vcg.same_vc(0, 1)
        assert vcg.n_vcs == 3
        assert vcg.fuse(0, 1) is False  # already together

    def test_fuse_transitive(self):
        vcg = VirtualClusterGraph(range(4))
        vcg.fuse(0, 1)
        vcg.fuse(1, 2)
        assert vcg.same_vc(0, 2)
        assert set(vcg.members(0)) == {0, 1, 2}

    def test_incompatibility(self):
        vcg = VirtualClusterGraph(range(3))
        assert vcg.mark_incompatible(0, 1) is True
        assert vcg.are_incompatible(0, 1)
        assert vcg.mark_incompatible(0, 1) is False
        assert vcg.n_incompatibilities() == 1

    def test_fuse_incompatible_raises(self):
        vcg = VirtualClusterGraph(range(3))
        vcg.mark_incompatible(0, 1)
        with pytest.raises(VCContradiction):
            vcg.fuse(0, 1)

    def test_incompatible_same_vc_raises(self):
        vcg = VirtualClusterGraph(range(3))
        vcg.fuse(0, 1)
        with pytest.raises(VCContradiction):
            vcg.mark_incompatible(0, 1)

    def test_fusion_repoints_incompatibility_edges(self):
        vcg = VirtualClusterGraph(range(4))
        vcg.mark_incompatible(0, 2)
        vcg.fuse(2, 3)
        # 3 inherits 2's incompatibility with 0.
        assert vcg.are_incompatible(0, 3)
        with pytest.raises(VCContradiction):
            vcg.fuse(0, 3)

    def test_incompatibility_degree(self):
        vcg = VirtualClusterGraph(range(4))
        vcg.mark_incompatible(0, 1)
        vcg.mark_incompatible(0, 2)
        assert vcg.incompatibility_degree(0) == 2
        assert sorted(vcg.incompatible_with(0)) == [vcg.vc_of(1), vcg.vc_of(2)]

    def test_pins(self):
        vcg = VirtualClusterGraph(range(3))
        assert vcg.pin(0, 1) is True
        assert vcg.pin_of(0) == 1
        assert vcg.pin(0, 1) is False
        with pytest.raises(VCContradiction):
            vcg.pin(0, 2)

    def test_pin_conflicts_with_incompatibility(self):
        vcg = VirtualClusterGraph(range(3))
        vcg.mark_incompatible(0, 1)
        vcg.pin(0, 0)
        with pytest.raises(VCContradiction):
            vcg.pin(1, 0)

    def test_fusing_vcs_with_different_pins_raises(self):
        vcg = VirtualClusterGraph(range(3))
        vcg.pin(0, 0)
        vcg.pin(1, 1)
        with pytest.raises(VCContradiction):
            vcg.fuse(0, 1)

    def test_copy_independent(self):
        vcg = VirtualClusterGraph(range(3))
        vcg.mark_incompatible(0, 1)
        clone = vcg.copy()
        clone.fuse(1, 2)
        assert not vcg.same_vc(1, 2)
        assert clone.are_incompatible(0, 2)

    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 7), st.integers(0, 7)),
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_fused_vcs_never_incompatible(self, actions):
        """Whatever sequence of accepted fusions/incompatibilities is applied,
        no two operations of one VC are ever marked incompatible."""
        vcg = VirtualClusterGraph(range(8))
        for fuse, u, v in actions:
            if u == v:
                continue
            try:
                if fuse:
                    vcg.fuse(u, v)
                else:
                    vcg.mark_incompatible(u, v)
            except VCContradiction:
                continue
        for vc in vcg.vcs():
            members = sorted(vc)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    assert not vcg.are_incompatible(a, b)


class TestMapping:
    def _triangle(self):
        vcg = VirtualClusterGraph(range(3))
        vcg.mark_incompatible(0, 1)
        vcg.mark_incompatible(1, 2)
        vcg.mark_incompatible(0, 2)
        return vcg

    def test_greedy_coloring_triangle(self):
        vcg = self._triangle()
        colors = greedy_coloring(vcg)
        assert len(set(colors.values())) == 3
        assert required_clusters_estimate(vcg) == 3

    def test_clique_detection(self):
        vcg = self._triangle()
        assert has_clique_larger_than(vcg, 2)
        assert not has_clique_larger_than(vcg, 3)

    def test_mapping_respects_incompatibilities(self):
        vcg = VirtualClusterGraph(range(4))
        vcg.mark_incompatible(0, 1)
        mapping = map_virtual_to_physical(vcg, 2)
        assert mapping is not None
        assert mapping[vcg.vc_of(0)] != mapping[vcg.vc_of(1)]

    def test_mapping_fails_on_large_clique(self):
        vcg = self._triangle()
        assert map_virtual_to_physical(vcg, 2) is None
        assert map_virtual_to_physical(vcg, 3) is not None

    def test_injective_mapping(self):
        vcg = VirtualClusterGraph(range(3))
        vcg.fuse(0, 1)
        mapping = map_virtual_to_physical(vcg, 4, injective=True)
        assert mapping is not None
        assert len(set(mapping.values())) == len(mapping)

    def test_injective_mapping_fails_when_too_many_vcs(self):
        vcg = VirtualClusterGraph(range(5))
        assert map_virtual_to_physical(vcg, 4, injective=True) is None
        assert map_virtual_to_physical(vcg, 4, injective=False) is not None

    def test_mapping_respects_pins(self):
        vcg = VirtualClusterGraph(range(3))
        vcg.pin(1, 2)
        mapping = map_virtual_to_physical(vcg, 3)
        assert mapping[vcg.vc_of(1)] == 2

    def test_mapping_rejects_invalid_pin(self):
        vcg = VirtualClusterGraph(range(2))
        vcg.pin(0, 5)
        assert map_virtual_to_physical(vcg, 2) is None

    def test_empty_vcg(self):
        vcg = VirtualClusterGraph()
        assert required_clusters_estimate(vcg) == 0
        assert map_virtual_to_physical(vcg, 2) == {}

    def test_zero_clusters_rejected(self):
        with pytest.raises(ValueError):
            map_virtual_to_physical(VirtualClusterGraph(range(1)), 0)

    def test_coloring_never_uses_more_than_degree_plus_one(self):
        vcg = VirtualClusterGraph(range(6))
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]
        for u, v in edges:
            vcg.mark_incompatible(u, v)
        max_degree = max(vcg.incompatibility_degree(r) for r in vcg.roots())
        assert required_clusters_estimate(vcg) <= max_degree + 1


class TestCommunication:
    def test_flc_kind(self):
        comm = Communication(10, "v0", producer=1, consumer=2)
        assert comm.kind is CommKind.FLC
        assert comm.is_fully_linked
        assert comm.possible_producers() == [1]
        assert comm.possible_consumers() == [2]

    def test_partial_kinds(self):
        p_plc = Communication(10, None, consumer=5, alternatives=((1, 5), (2, 5)))
        assert p_plc.kind is CommKind.P_PLC
        c_plc = Communication(11, "v1", producer=3, alternatives=((3, 6), (3, 7)))
        assert c_plc.kind is CommKind.C_PLC
        pc_plc = Communication(12, None, alternatives=((1, 5), (2, 6)))
        assert pc_plc.kind is CommKind.PC_PLC
        assert pc_plc.possible_producers() == [1, 2]
        assert pc_plc.possible_consumers() == [5, 6]

    def test_resolved(self):
        plc = Communication(10, None, consumer=5, alternatives=((1, 5), (2, 5)))
        flc = plc.resolved(2, 5, "v2")
        assert flc.is_fully_linked
        assert flc.producer == 2 and flc.value == "v2"
        assert flc.alternatives == ()

    def test_kind_is_partial_flag(self):
        assert CommKind.FLC.is_partial is False
        assert CommKind.P_PLC.is_partial is True


class TestCommunicationSet:
    def test_add_and_lookup(self):
        comms = CommunicationSet()
        comms.add(Communication(10, "v0", producer=1, consumer=2))
        comms.add(Communication(11, None, consumer=3, alternatives=((1, 3), (2, 3))))
        assert len(comms) == 2
        assert 10 in comms
        assert len(comms.fully_linked()) == 1
        assert len(comms.partially_linked()) == 1
        assert comms.for_pair(1, 2).comm_id == 10
        assert comms.for_pair(9, 9) is None

    def test_involving_pair_matches_alternatives(self):
        comms = CommunicationSet()
        comms.add(Communication(11, None, consumer=3, alternatives=((1, 3), (2, 3))))
        assert [c.comm_id for c in comms.involving_pair(1, 3)] == [11]
        assert comms.involving_pair(4, 3) == []

    def test_duplicate_id_rejected(self):
        comms = CommunicationSet()
        comms.add(Communication(10, "v0", producer=1, consumer=2))
        with pytest.raises(ValueError):
            comms.add(Communication(10, "v1", producer=3, consumer=4))

    def test_replace_requires_existing(self):
        comms = CommunicationSet()
        with pytest.raises(KeyError):
            comms.replace(Communication(10, "v0", producer=1, consumer=2))

    def test_copy_independent(self):
        comms = CommunicationSet()
        comms.add(Communication(10, "v0", producer=1, consumer=2))
        clone = comms.copy()
        clone.add(Communication(11, "v1", producer=1, consumer=3))
        assert len(comms) == 1
