"""Tests for the parallel batch runner (``repro.runner``).

The hard invariant under test: a parallel batch is byte-identical to a
serial one — same values, same order, same schedule fingerprints — for
any worker count, chunk size and completion order.  Alongside it: stable
job ids, per-job error capture, worker-crash and timeout propagation,
and ``REPRO_JOBS`` environment handling.
"""

import os
import time

import pytest

from repro.analysis.experiments import run_workload
from repro.machine import paper_2c_8i_1lat, paper_4c_16i_1lat
from repro.runner import (
    BatchError,
    BatchScheduler,
    ScheduleJob,
    enumerate_workload_jobs,
    fingerprint_digest,
    resolve_jobs,
    run_schedule_job,
    schedule_job_id,
    shared_pool,
    shutdown_shared_pools,
)
from repro.runner.pool import pool_reuse_enabled
from repro.scheduler import VcsConfig
from repro.workloads import all_kernels, build_benchmark, profile_by_name, stable_block_id
from repro.workloads.synth import GeneratorConfig, SuperblockGenerator


# --------------------------------------------------------------------------- #
# worker functions (module level so they pickle by reference)
# --------------------------------------------------------------------------- #
def _double(x):
    return 2 * x


def _fail_on_multiples_of_three(x):
    if x % 3 == 0:
        raise ValueError(f"refusing {x}")
    return x + 100


def _sleep_long(x):
    time.sleep(60)
    return x


def _exit_hard(x):
    os._exit(3)


# --------------------------------------------------------------------------- #
# REPRO_JOBS / worker-count resolution
# --------------------------------------------------------------------------- #
class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        assert BatchScheduler().n_workers == 1

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        assert BatchScheduler().n_workers == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2
        assert BatchScheduler(jobs=2).n_workers == 2

    def test_auto_uses_cpu_count(self, monkeypatch):
        expected = os.cpu_count() or 1
        assert resolve_jobs("auto") == expected
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs() == expected

    @pytest.mark.parametrize("bad", [0, -1, -8, "many", "0", 1.5])
    def test_nonpositive_and_nonint_rejected(self, bad):
        with pytest.raises(ValueError, match="positive integer or 'auto'"):
            resolve_jobs(bad)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            BatchScheduler(chunk_size=0)
        with pytest.raises(ValueError):
            BatchScheduler().map(_double, [1], on_error="explode")


# --------------------------------------------------------------------------- #
# deterministic merge
# --------------------------------------------------------------------------- #
class TestDeterministicMerge:
    def test_order_preserved_across_chunking(self):
        values = list(range(23))
        serial = BatchScheduler(jobs=1).map(_double, values)
        for chunk_size in (1, 3, 50):
            parallel = BatchScheduler(jobs=2, chunk_size=chunk_size).map(_double, values)
            assert parallel.values == serial.values == [2 * v for v in values]
            assert parallel.backend == "process"
        assert serial.backend == "serial"

    def test_single_job_short_circuits_to_serial(self):
        result = BatchScheduler(jobs=4).map(_double, [21])
        assert result.values == [42]
        assert result.backend == "serial"


# --------------------------------------------------------------------------- #
# parallel-vs-serial equality on real scheduling jobs
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def mixed_blocks():
    """The paper kernels plus seeded synthetic blocks."""
    gen = SuperblockGenerator(GeneratorConfig(min_ops=10, max_ops=20), seed=3)
    return list(all_kernels().values()) + gen.generate_many("runner-synth", 2)


class TestParallelEqualsSerial:
    def test_kernels_and_synthetic_blocks(self, mixed_blocks):
        machine = paper_2c_8i_1lat()
        jobs = enumerate_workload_jobs(
            "runner-test",
            mixed_blocks,
            machine,
            vcs_config=VcsConfig(work_budget=20_000),
        )
        serial = BatchScheduler(jobs=1).map(run_schedule_job, jobs)
        parallel = BatchScheduler(jobs=2, chunk_size=3).map(run_schedule_job, jobs)

        assert serial.ok and parallel.ok
        for s, p in zip(serial.values, parallel.values):
            assert s.fingerprint() == p.fingerprint()
            assert s.work == p.work
            assert s.ok == p.ok
            if s.ok:
                assert s.awct == p.awct
        assert fingerprint_digest(v.fingerprint() for v in serial.values) == fingerprint_digest(
            v.fingerprint() for v in parallel.values
        )

    def test_run_workload_through_parallel_runner(self):
        workload = build_benchmark(profile_by_name("130.li").scaled(3))
        machine = paper_4c_16i_1lat()
        serial = run_workload(workload, machine, work_budget=20_000, runner=BatchScheduler(jobs=1))
        parallel = run_workload(
            workload, machine, work_budget=20_000, runner=BatchScheduler(jobs=3)
        )
        assert serial.fingerprints() == parallel.fingerprints()
        assert [r.awct for r in serial.proposed_results] == [
            r.awct for r in parallel.proposed_results
        ]
        assert serial.comparison().speedup == parallel.comparison().speedup


# --------------------------------------------------------------------------- #
# job enumeration and stable ids
# --------------------------------------------------------------------------- #
class TestJobEnumeration:
    def test_ids_are_stable_and_self_describing(self, mixed_blocks):
        machine = paper_2c_8i_1lat()
        first = enumerate_workload_jobs("w", mixed_blocks, machine)
        second = enumerate_workload_jobs("w", mixed_blocks, machine)
        assert [j.job_id for j in first] == [j.job_id for j in second]
        # Canonical order: blocks in position order, cars before vcs.
        assert first[0].scheduler == "cars" and first[1].scheduler == "vcs"
        assert first[0].job_id == schedule_job_id(
            "cars", "w", machine.name, 0, mixed_blocks[0].name
        )
        assert len(first) == 2 * len(mixed_blocks)
        assert len({j.job_id for j in first}) == len(first)

    def test_workload_block_ids(self):
        workload = build_benchmark(profile_by_name("130.li").scaled(2))
        assert workload.block_ids == [workload.block_id(0), workload.block_id(1)]
        assert workload.block_id(1).startswith("130.li[0001]:")
        # One id scheme across the system: job ids embed the block id.
        block_id = stable_block_id("130.li", 1, workload.blocks[1].name)
        assert workload.block_id(1) == block_id
        job_id = schedule_job_id("vcs", "130.li", "m", 1, workload.blocks[1].name)
        assert job_id == f"vcs:m:{block_id}"

    def test_unknown_scheduler_rejected(self, mixed_blocks):
        with pytest.raises(ValueError):
            ScheduleJob(
                job_id="x",
                scheduler="llvm",
                block=mixed_blocks[0],
                machine=paper_2c_8i_1lat(),
            )


# --------------------------------------------------------------------------- #
# failure propagation
# --------------------------------------------------------------------------- #
class TestFailurePropagation:
    @pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "process"])
    def test_job_error_capture(self, jobs):
        values = list(range(7))
        result = BatchScheduler(jobs=jobs, chunk_size=2).map(
            _fail_on_multiples_of_three, values, on_error="capture"
        )
        assert [f.index for f in result.failures] == [0, 3, 6]
        for failure in result.failures:
            assert failure.kind == "error"
            assert failure.error_type == "ValueError"
            assert "refusing" in failure.message
            assert "ValueError" in failure.traceback_text
        assert [v for v in result.values if v is not None] == [101, 102, 104, 105]

    @pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "process"])
    def test_job_error_raises_batch_error(self, jobs):
        with pytest.raises(BatchError) as excinfo:
            BatchScheduler(jobs=jobs).map(_fail_on_multiples_of_three, [3])
        assert excinfo.value.failures[0].error_type == "ValueError"
        assert "refusing 3" in str(excinfo.value)

    def test_worker_crash_propagates(self):
        result = BatchScheduler(jobs=2, chunk_size=1).map(
            _exit_hard, [1, 2, 3, 4], on_error="capture"
        )
        assert len(result.failures) == 4
        assert all(v is None for v in result.values)
        assert any(f.kind == "crash" for f in result.failures)
        with pytest.raises(BatchError):
            BatchScheduler(jobs=2, chunk_size=1).map(_exit_hard, [1, 2])

    def test_timeout_tears_the_pool_down(self):
        start = time.perf_counter()
        result = BatchScheduler(jobs=2, chunk_size=1, timeout=0.5).map(
            _sleep_long, [1, 2, 3], on_error="capture"
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 30, "timeout did not preempt the sleeping workers"
        assert len(result.failures) == 3
        kinds = {f.kind for f in result.failures}
        assert "timeout" in kinds
        assert kinds <= {"timeout", "cancelled", "crash"}

    def test_mismatched_job_ids_rejected(self):
        with pytest.raises(ValueError):
            BatchScheduler().map(_double, [1, 2], job_ids=["only-one"])


# --------------------------------------------------------------------------- #
# persistent shared pool
# --------------------------------------------------------------------------- #
@pytest.fixture()
def clean_pools():
    """Isolate each test from pools created by earlier batches."""
    shutdown_shared_pools()
    yield
    shutdown_shared_pools()


class TestPersistentPool:
    def test_pool_survives_across_batches(self, clean_pools):
        runner = BatchScheduler(jobs=2, persistent=True)
        first = runner.map(_double, [1, 2, 3])
        second = runner.map(_double, [4, 5, 6])
        assert first.values == [2, 4, 6] and second.values == [8, 10, 12]
        pool = shared_pool(2)
        assert pool.alive
        assert pool.spin_ups == 1, "second batch must reuse the first batch's executor"
        assert pool.batches_served == 2

    def test_two_runners_share_one_pool(self, clean_pools):
        BatchScheduler(jobs=2, persistent=True).map(_double, [1, 2])
        BatchScheduler(jobs=2, persistent=True).map(_double, [3, 4])
        assert shared_pool(2).spin_ups == 1

    def test_crash_replaces_pool_and_next_batch_recovers(self, clean_pools):
        runner = BatchScheduler(jobs=2, chunk_size=1, persistent=True)
        crashed = runner.map(_exit_hard, [1, 2, 3], on_error="capture")
        assert not crashed.ok and any(f.kind == "crash" for f in crashed.failures)
        # The broken executor was discarded; a fresh one serves the next batch.
        after = runner.map(_double, [5, 6])
        assert after.ok and after.values == [10, 12]
        assert shared_pool(2).spin_ups == 2

    def test_timeout_replaces_pool_and_next_batch_recovers(self, clean_pools):
        runner = BatchScheduler(jobs=2, chunk_size=1, timeout=0.5, persistent=True)
        timed_out = runner.map(_sleep_long, [1, 2], on_error="capture")
        assert {f.kind for f in timed_out.failures} <= {"timeout", "cancelled", "crash"}
        after = BatchScheduler(jobs=2, persistent=True).map(_double, [7, 8])
        assert after.ok and after.values == [14, 16]

    def test_fresh_mode_leaves_no_shared_pool(self, clean_pools, monkeypatch):
        monkeypatch.setenv("REPRO_POOL", "fresh")
        assert not pool_reuse_enabled()
        result = BatchScheduler(jobs=2).map(_double, [1, 2, 3])
        assert result.values == [2, 4, 6]
        assert not shared_pool(2).alive

    def test_reuse_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL", raising=False)
        assert pool_reuse_enabled()
        for value in ("fresh", "off", "0", "FALSE"):
            monkeypatch.setenv("REPRO_POOL", value)
            assert not pool_reuse_enabled()

    def test_parallel_schedule_results_identical_on_shared_pool(
        self, clean_pools, mixed_blocks
    ):
        machine = paper_2c_8i_1lat()
        jobs = enumerate_workload_jobs(
            "pool-test",
            mixed_blocks,
            machine,
            vcs_config=VcsConfig(work_budget=20_000),
        )
        serial = BatchScheduler(jobs=1).map(run_schedule_job, jobs)
        runner = BatchScheduler(jobs=2, persistent=True)
        first = runner.map(run_schedule_job, jobs)
        second = runner.map(run_schedule_job, jobs)
        assert shared_pool(2).spin_ups == 1
        for s, a, b in zip(serial.values, first.values, second.values):
            assert s.fingerprint() == a.fingerprint() == b.fingerprint()
            assert s.work == a.work == b.work


class TestMachineInterning:
    def test_machine_ref_round_trips(self):
        from repro.runner import MachineRef
        from repro.runner.pool import resolve_machine
        from repro.scheduler import machine_digest

        machine = paper_4c_16i_1lat()
        ref = MachineRef.of(machine)
        rebuilt = resolve_machine(ref)
        assert machine_digest(rebuilt) == ref.digest == machine_digest(machine)
        # Same digest resolves to the same interned object.
        assert resolve_machine(ref) is rebuilt


# --------------------------------------------------------------------------- #
# fingerprint digests
# --------------------------------------------------------------------------- #
class TestFingerprintDigest:
    def test_digest_is_stable_and_discriminating(self):
        a = [["b", [[0, 1]], [[0, 0]], []]]
        assert fingerprint_digest(a) == fingerprint_digest(list(a))
        assert fingerprint_digest(a) != fingerprint_digest(a + a)
        assert len(fingerprint_digest(a)) == 64
