"""Unit tests for combinations, the scheduling graph and offset union-find."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import example_1cluster_fig4, example_2cluster, paper_2c_8i_1lat
from repro.sgraph import (
    Combination,
    OffsetContradiction,
    OffsetUnionFind,
    SchedulingGraph,
    combination_range,
    feasible_combinations,
    pair_key,
)
from repro.workloads import paper_figure1_block

from tests.helpers import linear_chain_block, wide_block


class TestCombination:
    def test_pair_key_orders(self):
        assert pair_key(3, 1) == (1, 3)
        assert pair_key(1, 3) == (1, 3)

    def test_combination_requires_order(self):
        with pytest.raises(ValueError):
            Combination(3, 1, 0)

    def test_offset_from_and_other(self):
        comb = Combination(1, 3, 2)
        assert comb.offset_from(1) == 2
        assert comb.offset_from(3) == -2
        assert comb.other(1) == 3
        with pytest.raises(KeyError):
            comb.offset_from(7)

    def test_combination_range_paper_pair(self):
        # A 3-cycle and a 2-cycle operation overlap at 4 distances.
        assert len(list(combination_range(3, 2))) == 4
        assert list(combination_range(1, 1)) == [0]

    def test_feasible_combinations_respect_dependences(self):
        block = paper_figure1_block()
        machine = example_1cluster_fig4()
        # I4 (op 5) depends on I1 (op 1): no feasible combination at distances
        # smaller than the producer latency.
        combos = feasible_combinations(block.graph, machine, 1, 5)
        assert combos == []

    def test_feasible_combinations_branch_pair_excludes_same_cycle(self):
        block = paper_figure1_block()
        machine = example_1cluster_fig4()  # one branch per cycle
        combos = feasible_combinations(block.graph, machine, 4, 6)
        distances = [c.distance for c in combos]
        assert 0 not in distances
        assert distances  # overlapping placements other than same-cycle exist

    def test_feasible_combinations_independent_pair(self):
        block = paper_figure1_block()
        machine = example_1cluster_fig4()
        combos = feasible_combinations(block.graph, machine, 1, 2)
        assert [c.distance for c in combos] == [-1, 0, 1]


class TestSchedulingGraph:
    def test_paper_example_edges(self):
        block = paper_figure1_block()
        sg = SchedulingGraph(block, example_1cluster_fig4())
        # No edge between an operation and its transitive successor at full
        # latency (e.g. I0 and B1), but an edge between the two branches.
        assert not sg.has_edge(0, 6)
        assert sg.has_edge(4, 6)
        assert sg.has_edge(1, 2)
        assert (1, 2) in sg.pairs()

    def test_neighbors_and_degree(self):
        block = paper_figure1_block()
        sg = SchedulingGraph(block, example_1cluster_fig4())
        assert 2 in sg.neighbors(1)
        assert sg.degree(1) == len(sg.neighbors(1))

    def test_combinations_symmetric_lookup(self):
        block = paper_figure1_block()
        sg = SchedulingGraph(block, example_1cluster_fig4())
        assert sg.combinations(2, 1) == sg.combinations(1, 2)

    def test_no_edges_in_serial_chain(self):
        block = linear_chain_block(length=4, latency=2)
        sg = SchedulingGraph(block, example_2cluster())
        # Chained 2-cycle operations can never overlap.
        assert len(sg) == 0

    def test_wide_block_has_many_edges(self):
        block = wide_block(width=4, latency=1)
        sg = SchedulingGraph(block, paper_2c_8i_1lat())
        assert len(sg) >= 6
        assert sg.n_combinations() >= len(sg)


class TestOffsetUnionFind:
    def test_link_and_offset(self):
        uf = OffsetUnionFind([1, 2, 3])
        uf.link(1, 2, 3)
        assert uf.offset_between(1, 2) == 3
        assert uf.offset_between(2, 1) == -3
        uf.link(2, 3, -1)
        assert uf.offset_between(1, 3) == 2

    def test_unlinked_offset_is_none(self):
        uf = OffsetUnionFind([1, 2])
        assert uf.offset_between(1, 2) is None
        assert not uf.connected(1, 2)

    def test_redundant_link_returns_false(self):
        uf = OffsetUnionFind([1, 2])
        assert uf.link(1, 2, 1) is True
        assert uf.link(1, 2, 1) is False

    def test_contradictory_link_raises(self):
        uf = OffsetUnionFind([1, 2, 3])
        uf.link(1, 2, 1)
        uf.link(2, 3, 1)
        with pytest.raises(OffsetContradiction):
            uf.link(1, 3, 5)

    def test_component_members(self):
        uf = OffsetUnionFind(range(5))
        uf.link(0, 1, 2)
        uf.link(1, 2, 2)
        members = dict(uf.component(0))
        assert members == {0: 0, 1: 2, 2: 4}
        assert uf.n_components() == 3

    def test_components_listing(self):
        uf = OffsetUnionFind(range(4))
        uf.link(0, 3, 1)
        assert [0, 3] in uf.components()

    def test_copy_is_independent(self):
        uf = OffsetUnionFind([1, 2, 3])
        uf.link(1, 2, 1)
        clone = uf.copy()
        clone.link(2, 3, 1)
        assert uf.offset_between(2, 3) is None

    def test_unknown_element_raises(self):
        uf = OffsetUnionFind([1])
        with pytest.raises(KeyError):
            uf.find(99)

    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9), st.integers(-5, 5)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_offsets_form_consistent_potentials(self, links):
        """After any sequence of accepted links, the recorded offsets admit a
        consistent cycle assignment (a potential function)."""
        uf = OffsetUnionFind(range(10))
        accepted = []
        for u, v, d in links:
            if u == v:
                continue
            try:
                uf.link(u, v, d)
                accepted.append((u, v, d))
            except OffsetContradiction:
                pass
        # Build potentials from the union-find and check every accepted link.
        potential = {}
        for element in range(10):
            root, offset = uf.find(element)
            potential[element] = offset
        for u, v, d in accepted:
            assert uf.connected(u, v)
            assert potential[v] - potential[u] == d or uf.find(u)[0] != uf.find(v)[0]
            if uf.find(u)[0] == uf.find(v)[0]:
                assert uf.offset_between(u, v) == d
