"""Unit tests for repro.ir.operation."""

import pytest

from repro.ir.operation import (
    DEFAULT_LATENCIES,
    OpClass,
    Operation,
    default_latency,
    make_copy,
)


class TestOpClass:
    def test_branch_flag(self):
        assert OpClass.BRANCH.is_branch
        assert not OpClass.INT.is_branch

    def test_copy_flag(self):
        assert OpClass.COPY.is_copy
        assert not OpClass.MEM.is_copy

    def test_default_latency_covers_every_class(self):
        for op_class in OpClass:
            assert default_latency(op_class) == DEFAULT_LATENCIES[op_class]
            assert default_latency(op_class) >= 1


class TestOperation:
    def test_basic_construction(self):
        op = Operation(0, "add", OpClass.INT, latency=2, dests=("x",), srcs=("a", "b"))
        assert op.name == "I0"
        assert not op.is_exit
        assert not op.is_branch

    def test_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            Operation(0, "add", OpClass.INT, latency=0)

    def test_exit_probability_range(self):
        with pytest.raises(ValueError):
            Operation(0, "br", OpClass.BRANCH, latency=1, is_exit=True, exit_prob=1.5)

    def test_exit_must_be_branch(self):
        with pytest.raises(ValueError):
            Operation(0, "add", OpClass.INT, latency=1, is_exit=True, exit_prob=0.5)

    def test_valid_exit(self):
        op = Operation(3, "br", OpClass.BRANCH, latency=3, is_exit=True, exit_prob=0.25)
        assert op.is_exit and op.is_branch
        assert op.name == "B3"

    def test_copy_requires_single_source(self):
        with pytest.raises(ValueError):
            Operation(0, "copy", OpClass.COPY, latency=1, srcs=("a", "b"))

    def test_with_id(self):
        op = Operation(0, "add", OpClass.INT, latency=1)
        renamed = op.with_id(7)
        assert renamed.op_id == 7
        assert renamed.opcode == op.opcode
        assert op.op_id == 0  # original untouched

    def test_name_prefixes(self):
        assert Operation(1, "load", OpClass.MEM, latency=2).name == "M1"
        assert Operation(2, "fadd", OpClass.FP, latency=3).name == "F2"
        assert make_copy(4, "v").name == "C4"

    def test_str_contains_opcode(self):
        op = Operation(0, "mul", OpClass.INT, latency=2, dests=("x",))
        assert "mul" in str(op)

    def test_operations_are_hashable_and_comparable(self):
        a = Operation(0, "add", OpClass.INT, latency=1)
        b = Operation(0, "add", OpClass.INT, latency=1)
        assert a == b
        assert hash(a) == hash(b)

    def test_comment_not_part_of_equality(self):
        a = Operation(0, "add", OpClass.INT, latency=1, comment="x")
        b = Operation(0, "add", OpClass.INT, latency=1, comment="y")
        assert a == b


class TestMakeCopy:
    def test_default_destination_name(self):
        copy = make_copy(9, "v3")
        assert copy.srcs == ("v3",)
        assert copy.dests == ("v3'",)
        assert copy.op_class is OpClass.COPY

    def test_custom_latency_and_dest(self):
        copy = make_copy(9, "v3", dest="remote", latency=2)
        assert copy.latency == 2
        assert copy.dests == ("remote",)
