"""Property tests: checkpoint/rollback restores the state exactly.

The trail-based scheduler probes candidate decisions in place and rolls
them back; the whole optimisation is sound only if a rollback restores the
scheduling state *observably identically* — bounds, chosen/discarded
combinations, connected components, the VCG partition, communications and
the dirty-tracked candidate caches.  Hypothesis drives random decision
sequences through the deduction process and asserts exactly that, including
nested checkpoints and redo logs.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.deduction import DeductionProcess, SchedulingState
from repro.deduction.consequence import (
    ChooseCombination,
    DiscardCombination,
    ForbidCycle,
    FuseVCs,
    MarkVCsIncompatible,
    ScheduleInCycle,
    SetExitDeadlines,
)
from repro.machine import example_2cluster, paper_2c_8i_1lat
from repro.sgraph import SchedulingGraph
from repro.workloads import paper_figure1_block
from repro.workloads.synth import GeneratorConfig, SuperblockGenerator

INFINITY = math.inf


def _contexts():
    """(block, machine, sgraph) fixtures shared by all examples."""
    contexts = []
    block = paper_figure1_block()
    machine = example_2cluster()
    contexts.append((block, machine, SchedulingGraph(block, machine)))
    gen = SuperblockGenerator(GeneratorConfig(min_ops=8, max_ops=14), seed=3)
    synth = gen.generate(name="trail-synth")
    machine2 = paper_2c_8i_1lat()
    contexts.append((synth, machine2, SchedulingGraph(synth, machine2)))
    return contexts


_CONTEXTS = _contexts()


def snapshot(state: SchedulingState):
    """Every observable component of the scheduling state."""
    return (
        dict(state.estart),
        dict(state.lstart),
        # Delta-maintained bound aggregates: restored by the trail's
        # inverse-delta entries, so every rollback/redo round-trip below
        # also proves the aggregates travel with the bounds.
        state.compactness(),
        state.total_slack(),
        state.chosen_combinations(),
        {k: frozenset(v) for k, v in state._discarded.items() if v},
        state.components.components(),
        state.vcg.vcs(),
        state.vcg.incompatibility_pairs(),
        {root: state.vcg.pin_of(root) for root in state.vcg.roots()},
        tuple(
            (c.comm_id, c.value, c.producer, c.consumer, c.alternatives)
            for c in state.comms
        ),
        tuple(state.comm_edges()),
        dict(state._value_flc),
        state._next_comm_id,
        dict(state.exit_deadlines),
        tuple(state.untreated_pairs()),
        frozenset(state._unfixed),
        {c: frozenset(s) for c, s in state._fixed_at.items() if s},
        tuple(state.all_ids),
    )


def check_cache_coherence(state: SchedulingState):
    """The dirty-tracked caches must match a from-scratch derivation."""
    assert state.compactness() == float(sum(state.estart[i] for i in state.original_ids))
    expected_slack = sum(
        state.lstart[i] - state.estart[i]
        for i in state.all_ids
        if state.lstart[i] != INFINITY
    )
    assert state.total_slack() == float(expected_slack)
    derived_unfixed = {i for i in state.all_ids if not state.is_fixed(i)}
    assert state._unfixed == derived_unfixed
    derived_undecided = {
        pair
        for pair in state.sgraph.pairs()
        if pair not in state._chosen and state.remaining_combinations(*pair)
    }
    assert state._undecided_pairs == derived_undecided
    derived_fixed_at = {}
    for i in state.all_ids:
        cycle = state.cycle_of(i)
        if cycle is not None:
            derived_fixed_at.setdefault(cycle, set()).add(i)
    assert {c: s for c, s in state._fixed_at.items() if s} == derived_fixed_at
    assert state.all_ids == state.original_ids + sorted(state._comm_ops)


@st.composite
def decision_sequences(draw):
    """A context index plus a list of (possibly contradictory) decisions."""
    ctx_index = draw(st.integers(min_value=0, max_value=len(_CONTEXTS) - 1))
    block, machine, sgraph = _CONTEXTS[ctx_index]
    op_ids = block.op_ids
    pairs = sgraph.pairs() or [(op_ids[0], op_ids[-1])]
    exits = block.exit_ids

    def one_decision(d):
        kind = d(st.integers(min_value=0, max_value=6))
        if kind == 0:
            u, v = d(st.sampled_from(pairs))
            distances = sgraph.distances(u, v) or (0,)
            return ChooseCombination(u, v, d(st.sampled_from(list(distances))))
        if kind == 1:
            u, v = d(st.sampled_from(pairs))
            distances = sgraph.distances(u, v) or (0,)
            return DiscardCombination(u, v, d(st.sampled_from(list(distances))))
        if kind == 2:
            return ScheduleInCycle(
                d(st.sampled_from(op_ids)), d(st.integers(min_value=0, max_value=12))
            )
        if kind == 3:
            return ForbidCycle(
                d(st.sampled_from(op_ids)), d(st.integers(min_value=0, max_value=12))
            )
        if kind == 4:
            u = d(st.sampled_from(op_ids))
            v = d(st.sampled_from(op_ids))
            if u == v:
                v = op_ids[(op_ids.index(u) + 1) % len(op_ids)]
            return FuseVCs.single(u, v)
        if kind == 5:
            u = d(st.sampled_from(op_ids))
            v = d(st.sampled_from(op_ids))
            if u == v:
                v = op_ids[(op_ids.index(u) + 1) % len(op_ids)]
            return MarkVCsIncompatible.single(u, v)
        deadlines = {
            e: d(st.integers(min_value=4, max_value=16))
            for e in exits
            if d(st.booleans())
        }
        if not deadlines:
            deadlines = {exits[-1]: 12}
        return SetExitDeadlines.from_mapping(deadlines)

    n = draw(st.integers(min_value=1, max_value=8))
    return ctx_index, [one_decision(draw) for _ in range(n)]


def apply_all(dp, state, decisions, budget=None):
    for decision in decisions:
        result = dp.apply(state, decision, in_place=True)
        if not result.ok:
            # A contradiction leaves partial mutations behind by design;
            # the scheduler always rolls back afterwards, so stop here.
            return False
    return True


class TestRollbackEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(decision_sequences())
    def test_rollback_restores_observable_state(self, case):
        ctx_index, decisions = case
        block, machine, sgraph = _CONTEXTS[ctx_index]
        state = SchedulingState(block, machine, sgraph)
        dp = DeductionProcess()
        before = snapshot(state)
        mark = state.checkpoint()
        apply_all(dp, state, decisions)
        state.rollback(mark)
        assert snapshot(state) == before
        check_cache_coherence(state)

    @settings(max_examples=15, deadline=None)
    @given(decision_sequences())
    def test_nested_checkpoints(self, case):
        ctx_index, decisions = case
        block, machine, sgraph = _CONTEXTS[ctx_index]
        state = SchedulingState(block, machine, sgraph)
        dp = DeductionProcess()
        split = max(1, len(decisions) // 2)
        s0 = snapshot(state)
        outer = state.checkpoint()
        ok = apply_all(dp, state, decisions[:split])
        if not ok:
            state.rollback(outer)
            assert snapshot(state) == s0
            return
        s1 = snapshot(state)
        inner = state.checkpoint()
        apply_all(dp, state, decisions[split:])
        state.rollback(inner)
        assert snapshot(state) == s1
        state.rollback(outer)
        assert snapshot(state) == s0

    @settings(max_examples=15, deadline=None)
    @given(decision_sequences())
    def test_redo_log_reproduces_span(self, case):
        """rollback_capture + redo must reproduce the probed state exactly."""
        ctx_index, decisions = case
        block, machine, sgraph = _CONTEXTS[ctx_index]
        state = SchedulingState(block, machine, sgraph)
        dp = DeductionProcess()
        mark = state.checkpoint()
        ok = apply_all(dp, state, decisions)
        if not ok:
            state.rollback(mark)
            return
        applied = snapshot(state)
        before = state.checkpoint()  # == trail position after the span
        log = state.rollback_capture(mark)
        state.redo(log)
        assert snapshot(state) == applied
        # The redone span is itself rollbackable.
        state.rollback(mark)
        _ = before
        check_cache_coherence(state)

    @settings(max_examples=15, deadline=None)
    @given(decision_sequences())
    def test_caches_track_forward_mutations(self, case):
        ctx_index, decisions = case
        block, machine, sgraph = _CONTEXTS[ctx_index]
        state = SchedulingState(block, machine, sgraph)
        dp = DeductionProcess()
        apply_all(dp, state, decisions)
        # Whatever happened (including partially applied contradictions is
        # excluded: mutators raise mid-change), the caches stay coherent
        # after every *successful* prefix; re-check on the current state
        # only when the last decision succeeded.
        state2 = SchedulingState(block, machine, sgraph)
        for decision in decisions:
            result = dp.apply(state2, decision, in_place=True)
            if not result.ok:
                break
            check_cache_coherence(state2)

    def test_copy_equals_trail_state(self):
        """state.copy() of a mutated state observably equals the original."""
        block, machine, sgraph = _CONTEXTS[0]
        state = SchedulingState(block, machine, sgraph)
        dp = DeductionProcess()
        exits = block.exit_ids
        apply_all(dp, state, [SetExitDeadlines.from_mapping({e: 9 for e in exits})])
        clone = state.copy()
        assert snapshot(clone) == snapshot(state)
        # Mutating the clone must not leak into the original.
        before = snapshot(state)
        apply_all(dp, clone, [ScheduleInCycle(block.op_ids[0], 0)])
        assert snapshot(state) == before


class TestStateTokens:
    """The trail-prefix token identifying a state for probe memoization."""

    def _bounded_state(self):
        block, machine, sgraph = _CONTEXTS[0]
        state = SchedulingState(block, machine, sgraph)
        dp = DeductionProcess()
        return block, dp, state

    def test_rollback_restores_token(self):
        block, dp, state = self._bounded_state()
        pristine = state.state_token()
        mark = state.checkpoint()
        apply_all(dp, state, [SetExitDeadlines.from_mapping({e: 9 for e in block.exit_ids})])
        assert state.state_token() != pristine
        state.rollback(mark)
        assert state.state_token() == pristine

    def test_diverging_mutation_changes_token(self):
        """Same trail length, different content => different token.

        Driven directly at the Trail level so the same-length collision —
        the exact case ProbeCache soundness depends on — is asserted
        deterministically, not only when two deductions happen to record
        equally many entries."""
        from repro.trail import Trail

        trail = Trail()
        first_target: dict = {}
        for i in range(5):
            trail.set_item(first_target, i, "a")
        token_a = trail.token()
        trail.rollback(0)
        second_target: dict = {}
        for i in range(5):
            trail.set_item(second_target, i, "b")
        assert len(trail) == 5  # same length as when token_a was taken
        assert trail.token() != token_a
        # Re-pushing even byte-identical entries lands in a fresh era.
        trail.rollback(0)
        for i in range(5):
            trail.set_item(first_target, i, "a")
        assert trail.token() != token_a

    def test_diverging_deduction_changes_token(self):
        block, dp, state = self._bounded_state()
        mark = state.checkpoint()
        apply_all(dp, state, [SetExitDeadlines.from_mapping({e: 9 for e in block.exit_ids})])
        after_first = state.state_token()
        length_first = state.checkpoint()
        state.rollback(mark)
        apply_all(dp, state, [SetExitDeadlines.from_mapping({e: 10 for e in block.exit_ids})])
        # Even if the diverging run lands on the same trail length, the
        # token must differ (a fresh era started after the rollback).
        if state.checkpoint() == length_first:
            assert state.state_token() != after_first

    def test_equal_tokens_only_for_identical_states(self):
        block, dp, state = self._bounded_state()
        mark = state.checkpoint()
        decisions = [SetExitDeadlines.from_mapping({e: 9 for e in block.exit_ids})]
        apply_all(dp, state, decisions)
        token = state.state_token()
        reference = snapshot(state)
        state.rollback(mark)
        apply_all(dp, state, decisions)
        # The re-applied span pushes the same entries in a new era: the
        # state content is identical but the token conservatively differs
        # (a token match is a guarantee, not a completeness promise).
        assert snapshot(state) == reference
        # Rolling back and forward with capture/redo preserves content and
        # coherence regardless of token identity.
        log = state.rollback_capture(mark)
        state.redo(log)
        assert snapshot(state) == reference
        check_cache_coherence(state)
        _ = token
