"""Tests for the CARS baseline and the plain list scheduler."""

import pytest

from repro.bounds import min_awct
from repro.machine import (
    example_2cluster,
    paper_2c_8i_1lat,
    paper_4c_16i_1lat,
    paper_4c_16i_2lat,
    unified,
)
from repro.scheduler import CarsScheduler, ListScheduler, validate_schedule
from repro.workloads import (
    dct_butterfly_kernel,
    dot_product_kernel,
    fir_kernel,
    paper_figure1_block,
    string_search_kernel,
)

from tests.helpers import linear_chain_block, wide_block

# The Section 5 example machine only has integer and branch units, so it is
# exercised with the paper's running example only; the kernels (which contain
# memory and floating-point operations) run on the full paper configurations.
ALL_MACHINES = [
    paper_2c_8i_1lat(),
    paper_4c_16i_1lat(),
    paper_4c_16i_2lat(),
    unified(),
]

KERNELS = [
    paper_figure1_block(),
    fir_kernel(),
    dot_product_kernel(),
    dct_butterfly_kernel(),
    string_search_kernel(),
]


class TestCarsBasics:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            CarsScheduler(cluster_policy="bogus")

    def test_schedules_every_operation(self):
        block = paper_figure1_block()
        result = CarsScheduler().schedule(block, paper_2c_8i_1lat())
        assert set(result.schedule.cycles) == set(block.op_ids)
        assert set(result.schedule.clusters) == set(block.op_ids)

    def test_result_metadata(self):
        block = paper_figure1_block()
        result = CarsScheduler().schedule(block, paper_2c_8i_1lat())
        assert result.scheduler == "CARS"
        assert result.work > 0
        assert result.wall_time >= 0.0
        assert not result.timed_out

    def test_chain_is_scheduled_serially(self):
        block = linear_chain_block(length=4, latency=2)
        result = CarsScheduler().schedule(block, paper_2c_8i_1lat())
        assert result.awct == pytest.approx(min_awct(block))
        assert result.schedule.n_communications == 0

    def test_paper_example_matches_hand_result(self):
        """On the Section 5 machine CARS behaves like a greedy list
        scheduler: it reaches AWCT 9.8, above the paper technique's 9.4."""
        block = paper_figure1_block()
        result = CarsScheduler().schedule(block, example_2cluster())
        assert result.awct == pytest.approx(9.8, abs=1e-6)

    def test_respects_awct_lower_bound(self):
        for block in KERNELS:
            for machine in ALL_MACHINES:
                result = CarsScheduler().schedule(block, machine)
                assert result.awct >= min_awct(block, machine) - 1e-9


@pytest.mark.parametrize("machine", ALL_MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("block", KERNELS, ids=lambda b: b.name)
class TestCarsValidity:
    def test_schedules_are_valid(self, block, machine):
        result = CarsScheduler().schedule(block, machine)
        report = validate_schedule(result.schedule)
        assert report.ok, report.errors


class TestListScheduler:
    def test_list_scheduler_valid_everywhere(self):
        block = wide_block(width=6, latency=1)
        for machine in ALL_MACHINES:
            result = ListScheduler().schedule(block, machine)
            assert validate_schedule(result.schedule).ok

    def test_naive_policy_never_beats_cars_on_average(self):
        blocks = KERNELS
        machine = paper_4c_16i_1lat()
        cars_total = sum(CarsScheduler().schedule(b, machine).total_cycles for b in blocks)
        naive_total = sum(ListScheduler().schedule(b, machine).total_cycles for b in blocks)
        assert cars_total <= naive_total + 1e-9

    def test_single_cluster_equivalence(self):
        # On a unified machine the cluster policy is irrelevant.
        block = dot_product_kernel()
        machine = unified()
        assert (
            CarsScheduler().schedule(block, machine).awct
            == ListScheduler().schedule(block, machine).awct
        )
