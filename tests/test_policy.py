"""Budget-policy semantics: tiers, graceful degradation, refinement.

The load-bearing invariants of the anytime-scheduling layer:

* ``finalize_partial`` never emits an invalid (or missing) schedule, no
  matter where in the pipeline the budget dies — and never does worse
  than the paper's pure-CARS timeout fallback;
* tier transitions escalate monotonically (healthy → warning → critical
  → exhausted) with non-decreasing spend coordinates;
* a policy with generous limits is byte-identical to no policy at all —
  the observer-driven budget path must not change schedules or the
  deterministic ``dp_work`` accounting (the CI perf gate holds the same
  invariant for the default config at bench scale);
* the refine phase is monotone: AWCT never worsens across rounds;
* the three ``WorkBudget`` exhaustion paths (``charge``,
  ``charge_block``, the engine's inlined fast loop) raise one identical
  message with unit-exact ``spent``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deduction.consequence import SetExitDeadlines
from repro.deduction.engine import (
    BudgetExhausted,
    DeductionProcess,
    WorkBudget,
    budget_exhausted_message,
)
from repro.deduction.state import SchedulingState
from repro.machine import paper_2c_8i_1lat, paper_4c_16i_1lat
from repro.scheduler import (
    TIERS,
    CarsScheduler,
    PolicyTracker,
    SchedulePolicy,
    VcsConfig,
    VirtualClusterScheduler,
    validate_schedule,
)
from repro.sgraph.scheduling_graph import SchedulingGraph
from repro.workloads import GeneratorConfig, SuperblockGenerator

from tests.helpers import linear_chain_block


def _random_block(seed: int, size: int, ilp: float):
    config = GeneratorConfig(min_ops=size, max_ops=size, ilp=ilp, exit_every=5)
    return SuperblockGenerator(config, seed=seed).generate(f"policy/{seed}")


# --------------------------------------------------------------------------- #
# WorkBudget: one exhaustion message, unit-exact spent, on all three paths
# --------------------------------------------------------------------------- #
class TestBudgetExhaustionMessage:
    def test_charge_path(self):
        budget = WorkBudget(limit=5, spent=5)
        with pytest.raises(BudgetExhausted) as exc:
            budget.charge()
        assert budget.spent == 6
        assert str(exc.value) == budget_exhausted_message(5, 6)

    def test_charge_block_path(self):
        budget = WorkBudget(limit=5, spent=3)
        with pytest.raises(BudgetExhausted) as exc:
            budget.charge_block(10)
        # Block accounting clamps to limit+1: the same spent value that
        # unit-by-unit charging would have recorded at the raise.
        assert budget.spent == 6
        assert str(exc.value) == budget_exhausted_message(5, 6)

    def test_inlined_fast_loop_path(self):
        """The deduction engine's inlined budget loop must raise the exact
        message (and spent value) of the generic ``charge`` path."""
        block = linear_chain_block(length=6)
        machine = paper_2c_8i_1lat()
        decision = SetExitDeadlines.from_mapping(
            {op_id: 40 for op_id in block.exit_ids}
        )

        # Measure the full deduction's work, then rerun with half the limit.
        state = SchedulingState(block, machine, SchedulingGraph(block, machine))
        full = DeductionProcess().apply(state, decision, budget=WorkBudget())
        assert full.work > 2

        limit = full.work // 2
        budget = WorkBudget(limit=limit)
        state = SchedulingState(block, machine, SchedulingGraph(block, machine))
        with pytest.raises(BudgetExhausted) as exc:
            DeductionProcess().apply(state, decision, budget=budget)
        assert budget.spent == limit + 1
        assert str(exc.value) == budget_exhausted_message(limit, limit + 1)

    def test_all_paths_produce_identical_text(self):
        messages = set()
        budget = WorkBudget(limit=7, spent=7)
        with pytest.raises(BudgetExhausted) as exc:
            budget.charge()
        messages.add(str(exc.value))
        budget = WorkBudget(limit=7, spent=0)
        with pytest.raises(BudgetExhausted) as exc:
            budget.charge_block(8)
        messages.add(str(exc.value))
        assert messages == {budget_exhausted_message(7, 8)}


# --------------------------------------------------------------------------- #
# SchedulePolicy: validation and serialisation
# --------------------------------------------------------------------------- #
class TestSchedulePolicy:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown exhaustion mode"):
            SchedulePolicy(exhaustion_mode="explode")

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError, match="tier thresholds"):
            SchedulePolicy(warning_at=0.9, critical_at=0.5)

    def test_parse_bare_mode(self):
        assert SchedulePolicy.parse("finalize_partial").finalizes_partial

    def test_parse_key_value_form(self):
        policy = SchedulePolicy.parse(
            "mode=finalize_partial, max_dp_work=2000, refine_rounds=2, warning_at=0.4"
        )
        assert policy.exhaustion_mode == "finalize_partial"
        assert policy.max_dp_work == 2000
        assert policy.refine_rounds == 2
        assert policy.warning_at == 0.4

    def test_dict_round_trip(self):
        policy = SchedulePolicy(
            exhaustion_mode="finalize_partial", max_dp_work=500, max_probes=40
        )
        assert SchedulePolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown SchedulePolicy keys"):
            SchedulePolicy.from_dict({"max_dp_woork": 5})

    def test_vcs_config_coerces_policy(self):
        config = VcsConfig.from_dict({"policy": "mode=finalize_partial,max_dp_work=99"})
        assert config.policy == SchedulePolicy("finalize_partial", max_dp_work=99)
        round_trip = VcsConfig.from_dict(config.to_dict())
        assert round_trip.policy == config.policy

    def test_refine_seed_is_deterministic_per_block(self):
        policy = SchedulePolicy(refine_seed=3)
        assert policy.refine_rng_seed("a") == policy.refine_rng_seed("a")
        assert policy.refine_rng_seed("a") != policy.refine_rng_seed("b")


# --------------------------------------------------------------------------- #
# tier transitions
# --------------------------------------------------------------------------- #
def _tier_indices(transitions):
    return [TIERS.index(t["tier"]) for t in transitions]


class TestTierTransitions:
    def test_dp_spend_walks_the_tiers_in_order(self):
        policy = SchedulePolicy(max_dp_work=100, warning_at=0.5, critical_at=0.9)
        budget = WorkBudget()
        tracker = PolicyTracker(policy, budget)
        tracker.attach(budget)
        assert budget.limit == 100
        assert tracker.tier == "healthy"
        for _ in range(49):
            budget.charge()
        assert tracker.tier == "healthy"
        budget.charge()
        assert tracker.tier == "warning"
        budget.charge_block(39)
        assert tracker.tier == "warning"
        budget.charge()
        assert tracker.tier == "critical"
        assert tracker.cheap

        indices = _tier_indices(tracker.transitions)
        assert indices == sorted(indices)
        spends = [t["dp_work"] for t in tracker.transitions]
        assert spends == sorted(spends)

    def test_attach_takes_the_tighter_limit(self):
        policy = SchedulePolicy(max_dp_work=50)
        budget = WorkBudget(limit=30)
        PolicyTracker(policy, budget).attach(budget)
        assert budget.limit == 30
        budget = WorkBudget(limit=500)
        PolicyTracker(policy, budget).attach(budget)
        assert budget.limit == 50

    def test_probe_budget_exhausts(self):
        policy = SchedulePolicy(max_probes=3)
        budget = WorkBudget()
        tracker = PolicyTracker(policy, budget)
        tracker.attach(budget)
        for _ in range(3):
            tracker.note_probe()
        with pytest.raises(BudgetExhausted, match="probe budget"):
            tracker.note_probe()

    def test_real_run_records_escalating_tiers(self):
        block = _random_block(7, 12, 3.0)
        policy = SchedulePolicy(exhaustion_mode="finalize_partial", max_dp_work=400)
        result = VirtualClusterScheduler(VcsConfig(policy=policy)).schedule(
            block, paper_4c_16i_1lat()
        )
        transitions = result.policy["transitions"]
        indices = _tier_indices(transitions)
        assert indices == sorted(indices)
        assert transitions[0]["tier"] == "healthy"
        assert result.policy["tier"] == "exhausted"
        assert result.policy["partial_finalize"] is True


# --------------------------------------------------------------------------- #
# byte-identity: a generous policy must not change the scheduler's output
# --------------------------------------------------------------------------- #
class TestDefaultByteIdentity:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_generous_policy_matches_no_policy(self, seed):
        """With limits far above actual spend, the observer-driven budget
        path must reproduce the policy-free run exactly: same schedule,
        same deterministic dp_work, same fallback flag."""
        block = _random_block(seed, 10, 3.0)
        machine = paper_4c_16i_1lat()
        bare = VirtualClusterScheduler(VcsConfig(work_budget=40_000)).schedule(
            block, machine
        )
        policy = SchedulePolicy(exhaustion_mode="finalize_partial", max_dp_work=10**8)
        policed = VirtualClusterScheduler(
            VcsConfig(work_budget=40_000, policy=policy)
        ).schedule(block, machine)

        bare_fp = bare.fingerprint()
        policed_fp = policed.fingerprint()
        # The policy summary appends one fingerprint element; everything
        # before it — scheduler, block, machine, work, fallback, schedule —
        # must be byte-identical.
        assert policed_fp[: len(bare_fp)] == bare_fp
        assert len(policed_fp) == len(bare_fp) + 1

    def test_no_policy_keeps_historical_fingerprint_shape(self):
        block = linear_chain_block()
        result = VirtualClusterScheduler().schedule(block, paper_2c_8i_1lat())
        assert result.policy is None
        assert len(result.fingerprint()) == 6
        assert len(result.schedule.fingerprint()) == 4


# --------------------------------------------------------------------------- #
# finalize_partial: always a valid schedule, never worse than pure CARS
# --------------------------------------------------------------------------- #
class TestFinalizePartial:
    @given(
        seed=st.integers(0, 10_000),
        size=st.integers(6, 14),
        ilp=st.floats(1.5, 5.0),
        budget=st.sampled_from([60, 150, 400, 1000, 2500]),
    )
    @settings(max_examples=20, deadline=None)
    def test_output_always_validates(self, seed, size, ilp, budget):
        block = _random_block(seed, size, ilp)
        policy = SchedulePolicy(exhaustion_mode="finalize_partial", max_dp_work=budget)
        result = VirtualClusterScheduler(VcsConfig(policy=policy)).schedule(
            block, paper_4c_16i_1lat()
        )
        assert result.schedule is not None
        report = validate_schedule(result.schedule)
        assert report.ok, (block.name, budget, report.errors)

    @given(seed=st.integers(0, 10_000), budget=st.sampled_from([100, 300, 800]))
    @settings(max_examples=10, deadline=None)
    def test_never_worse_than_pure_cars(self, seed, budget):
        block = _random_block(seed, 10, 3.0)
        machine = paper_4c_16i_1lat()
        cars = CarsScheduler().schedule(block, machine)
        policy = SchedulePolicy(exhaustion_mode="finalize_partial", max_dp_work=budget)
        result = VirtualClusterScheduler(VcsConfig(policy=policy)).schedule(
            block, machine
        )
        assert result.awct <= cars.awct + 1e-9

    def test_partial_schedule_carries_provenance(self):
        block = _random_block(11, 12, 3.0)
        policy = SchedulePolicy(exhaustion_mode="finalize_partial", max_dp_work=80)
        result = VirtualClusterScheduler(VcsConfig(policy=policy)).schedule(
            block, paper_4c_16i_1lat()
        )
        assert result.timed_out
        assert result.schedule.provenance["policy"] == "finalize_partial"
        assert result.schedule.provenance["source"] == result.policy["source"]
        # Provenance distinguishes the fingerprint from a plain schedule's.
        assert len(result.schedule.fingerprint()) == 5

    def test_fail_mode_reproduces_fallback_behaviour(self):
        block = _random_block(11, 12, 3.0)
        machine = paper_4c_16i_1lat()
        policy = SchedulePolicy(exhaustion_mode="fail", max_dp_work=80)
        result = VirtualClusterScheduler(VcsConfig(policy=policy)).schedule(
            block, machine
        )
        bare = VirtualClusterScheduler(VcsConfig(work_budget=80)).schedule(
            block, machine
        )
        assert result.fallback_used and bare.fallback_used
        assert result.schedule.fingerprint() == bare.schedule.fingerprint()
        assert result.policy["tier"] == "exhausted"

    def test_probe_limit_also_finalizes(self):
        block = _random_block(3, 12, 3.0)
        policy = SchedulePolicy(exhaustion_mode="finalize_partial", max_probes=5)
        result = VirtualClusterScheduler(VcsConfig(policy=policy)).schedule(
            block, paper_4c_16i_1lat()
        )
        assert result.schedule is not None
        assert validate_schedule(result.schedule).ok
        assert "probe budget" in (result.policy["exhausted_reason"] or "")


# --------------------------------------------------------------------------- #
# refine: AWCT monotone, deterministic
# --------------------------------------------------------------------------- #
class TestRefine:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_refine_never_worsens_awct(self, seed):
        block = _random_block(seed, 10, 3.0)
        machine = paper_4c_16i_1lat()
        base = VirtualClusterScheduler(VcsConfig(work_budget=40_000)).schedule(
            block, machine
        )
        policy = SchedulePolicy(max_dp_work=120_000, refine_rounds=3, refine_neighborhood=3)
        refined = VirtualClusterScheduler(
            VcsConfig(work_budget=40_000, policy=policy)
        ).schedule(block, machine)
        if not (base.ok and refined.ok):
            return
        assert refined.awct <= base.awct + 1e-9
        # best_awct is monotone non-increasing across the recorded rounds.
        best = [entry["best_awct"] for entry in refined.policy["refine"] if "best_awct" in entry]
        assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(best, best[1:]))
        assert validate_schedule(refined.schedule).ok

    def test_refine_is_deterministic(self):
        block = _random_block(5, 12, 3.5)
        machine = paper_4c_16i_1lat()
        policy = SchedulePolicy(max_dp_work=100_000, refine_rounds=2, refine_seed=7)
        config = VcsConfig(policy=policy)
        first = VirtualClusterScheduler(config).schedule(block, machine)
        second = VirtualClusterScheduler(config).schedule(block, machine)
        assert first.fingerprint() == second.fingerprint()
        assert first.policy["refine"] == second.policy["refine"]
