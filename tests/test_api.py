"""Tests for the ``repro.api`` facade and the ``repro.config`` loader.

The load-bearing invariant: a :class:`ScheduleRequest` that round-trips
through its wire form (``to_dict``/``from_dict`` — the job server's
submission payload) schedules **byte-identically** to the original
in-process objects.  That holds only because ``block_to_dict``
serialises edges in :meth:`DependenceGraph.ordered_edges
<repro.ir.depgraph.DependenceGraph.ordered_edges>` order — an
insertion-compatible sequence that reproduces every node's
successor/predecessor iteration order, which the deduction engine's
``dp_work`` depends on.  Alongside it: the facade's local
``submit``/``wait`` path, the ``map_schedule_jobs`` deprecation shim,
and the ``RuntimeConfig`` precedence contract (explicit argument >
environment > default).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    JobStatus,
    ScheduleRequest,
    ScheduleResponse,
    block_from_dict,
    block_to_dict,
    schedule_many,
    submit,
    wait,
)
from repro.config import RuntimeConfig, env_knob, parse_jobs
from repro.machine import paper_2c_8i_1lat
from repro.runner import CacheSpec, fingerprint_digest, map_schedule_jobs
from repro.scheduler import VcsConfig, block_digest
from repro.scheduler.policy import SchedulePolicy
from repro.workloads import GeneratorConfig, SuperblockGenerator, paper_figure1_block


def _random_block(seed: int, size: int, ilp: float):
    config = GeneratorConfig(min_ops=size, max_ops=size, ilp=ilp, exit_every=5)
    return SuperblockGenerator(config, seed=seed).generate(f"api/{seed}")


def _request(block, policy=None, client="default"):
    return ScheduleRequest(
        block=block,
        machine=paper_2c_8i_1lat(),
        backend="vcs",
        vcs=VcsConfig(work_budget=50_000),
        policy=policy,
        client=client,
    )


def _adjacency(block):
    """Every node's successor and predecessor iteration order — the
    state the deduction engine's determinism is sensitive to."""
    graph = block.graph._graph
    return {
        node: (list(graph.successors(node)), list(graph.predecessors(node)))
        for node in graph.nodes()
    }


# --------------------------------------------------------------------------- #
# wire round trip
# --------------------------------------------------------------------------- #
class TestBlockWire:
    def test_round_trip_preserves_digest_and_adjacency(self):
        block = paper_figure1_block()
        rebuilt = block_from_dict(block_to_dict(block))
        assert block_digest(rebuilt) == block_digest(block)
        assert _adjacency(rebuilt) == _adjacency(block)

    def test_round_trip_schedules_byte_identically(self):
        block = paper_figure1_block()
        rebuilt = block_from_dict(block_to_dict(block))
        original = schedule_many([_request(block)], cache=CacheSpec.disabled())
        wire = schedule_many([_request(rebuilt)], cache=CacheSpec.disabled())
        assert original.values[0].fingerprint() == wire.values[0].fingerprint()
        assert original.values[0].work == wire.values[0].work

    @given(seed=st.integers(0, 10_000), size=st.integers(5, 20), ilp=st.floats(1.5, 5.0))
    @settings(max_examples=15, deadline=None)
    def test_ordered_edges_is_insertion_compatible(self, seed, size, ilp):
        block = _random_block(seed, size, ilp)
        rebuilt = block_from_dict(block_to_dict(block))
        assert _adjacency(rebuilt) == _adjacency(block)
        assert block_digest(rebuilt) == block_digest(block)

    def test_ordered_edges_covers_every_edge_once(self):
        block = paper_figure1_block()
        ordered = block.graph.ordered_edges()
        flat = list(block.graph.edges())
        assert len(ordered) == len(flat)
        assert {(e.src, e.dst) for e in ordered} == {(e.src, e.dst) for e in flat}


class TestScheduleRequestWire:
    def test_round_trip_is_stable(self):
        policy = SchedulePolicy("finalize_partial", max_dp_work=500)
        request = _request(paper_figure1_block(), policy=policy, client="tenant-a")
        wire = request.to_dict()
        rebuilt = ScheduleRequest.from_dict(wire)
        assert rebuilt.to_dict() == wire
        assert rebuilt.client == "tenant-a"
        assert rebuilt.effective_vcs.policy == policy

    def test_rejects_unknown_backend(self):
        with pytest.raises(Exception):
            ScheduleRequest(
                block=paper_figure1_block(),
                machine=paper_2c_8i_1lat(),
                backend="no-such-backend",
            )

    def test_from_dict_rejects_unknown_keys(self):
        wire = _request(paper_figure1_block()).to_dict()
        wire["surprise"] = 1
        with pytest.raises(ValueError, match="unknown"):
            ScheduleRequest.from_dict(wire)

    def test_job_round_trip(self):
        request = _request(paper_figure1_block())
        job = request.job()
        again = ScheduleRequest.from_job(job, client=request.client)
        assert again.job().spec.to_dict() == job.spec.to_dict()
        assert again.job().job_id == job.job_id


# --------------------------------------------------------------------------- #
# the facade entry points
# --------------------------------------------------------------------------- #
class TestFacade:
    def test_map_schedule_jobs_is_deprecated_but_equivalent(self):
        jobs = [_request(paper_figure1_block()).job()]
        fresh = schedule_many(jobs, cache=CacheSpec.disabled())
        with pytest.warns(DeprecationWarning, match="repro.api.schedule_many"):
            legacy = map_schedule_jobs(jobs, cache=CacheSpec.disabled())
        assert [r.fingerprint() for r in fresh.values] == [
            r.fingerprint() for r in legacy.values
        ]

    def test_schedule_many_accepts_requests_and_jobs(self):
        request = _request(paper_figure1_block())
        mixed = schedule_many([request, request.job()], cache=CacheSpec.disabled())
        assert mixed.values[0].fingerprint() == mixed.values[1].fingerprint()

    def test_local_submit_wait(self, tmp_path):
        request = _request(paper_figure1_block())
        spec = CacheSpec(root=str(tmp_path))
        cold = wait(submit(request, cache=spec))
        warm = wait(submit(request, cache=spec))
        assert cold.state == warm.state == "done"
        assert cold.digest == warm.digest
        assert cold.cache == "miss" and warm.cache == "hit"
        reference = schedule_many([request], cache=CacheSpec.disabled())
        assert cold.digest == fingerprint_digest([reference.values[0].fingerprint()])
        assert cold.work == reference.values[0].work

    def test_response_round_trip(self):
        request = _request(paper_figure1_block())
        response = wait(submit(request, cache=CacheSpec.disabled()))
        assert ScheduleResponse.from_dict(response.to_dict()) == response

    def test_job_status_round_trip_and_validation(self):
        status = JobStatus(job_id="j-000001", state="queued", queue_position=2)
        assert JobStatus.from_dict(status.to_dict()) == status
        with pytest.raises(ValueError, match="state"):
            JobStatus(job_id="j-000002", state="napping")


# --------------------------------------------------------------------------- #
# RuntimeConfig: one typed loader for every REPRO_* knob
# --------------------------------------------------------------------------- #
class TestRuntimeConfig:
    def test_defaults(self):
        config = RuntimeConfig.load(env={})
        assert config.jobs == 1
        assert config.scheduler == "vcs"
        assert config.bench_blocks is None
        assert config.bench_budget == 60_000
        assert config.cache is True
        assert config.pool is True
        assert config.service_host == "127.0.0.1"
        assert config.service_port == 0
        assert config.service_timeout is None

    def test_env_beats_default(self):
        env = {
            "REPRO_JOBS": "4",
            "REPRO_CACHE": "off",
            "REPRO_SERVICE_PORT": "8423",
            "REPRO_SERVICE_TIMEOUT": "2.5",
        }
        config = RuntimeConfig.load(env=env)
        assert config.jobs == 4
        assert config.cache is False
        assert config.service_port == 8423
        assert config.service_timeout == 2.5

    def test_explicit_override_beats_env(self):
        config = RuntimeConfig.load(env={"REPRO_JOBS": "4"}, jobs="2", cache="off")
        assert config.jobs == 2
        assert config.cache is False

    def test_unknown_override_is_an_error(self):
        with pytest.raises(TypeError, match="unknown"):
            RuntimeConfig.load(env={}, jbos=2)

    def test_jobs_parse_matches_runner_contract(self):
        assert parse_jobs("auto") >= 1
        with pytest.raises(ValueError, match="expected a positive integer or 'auto'"):
            parse_jobs("0")
        with pytest.raises(ValueError, match="expected a positive integer or 'auto'"):
            parse_jobs("many")

    def test_registry_covers_every_field(self):
        import dataclasses

        names = {field.name for field in dataclasses.fields(RuntimeConfig)}
        assert {env_knob(name).attr for name in names} == names
