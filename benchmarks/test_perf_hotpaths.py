"""Micro-benchmarks of the deduction hot path.

Times the three optimisations this repository's hot path is built on:

* **trail probing** — apply-then-undo of a candidate decision versus the
  legacy deep-copy-then-apply (``VcsConfig.use_trail``);
* **indexed rule dispatch** — the type-keyed dispatch table of the
  deduction engine versus the linear ``rule.applies`` scan
  (``DeductionProcess(indexed_dispatch=...)``);
* **full scheduler passes** in both probing modes over a seeded synthetic
  workload (scaled by ``REPRO_BENCH_BLOCKS``).

``scripts/bench_report.py`` aggregates the same comparisons (plus a
baseline git revision) into ``BENCH_vcs.json`` for trend tracking.
"""

import pytest

from benchmarks.conftest import bench_blocks
from repro.deduction import DeductionProcess, SchedulingState
from repro.deduction.consequence import ScheduleInCycle, SetExitDeadlines
from repro.machine import paper_2c_8i_1lat
from repro.scheduler import VcsConfig, VirtualClusterScheduler
from repro.sgraph import SchedulingGraph
from repro.workloads.synth import GeneratorConfig, SuperblockGenerator


@pytest.fixture(scope="module")
def probe_context():
    """A mid-size bounded state plus a decision worth probing."""
    gen = SuperblockGenerator(GeneratorConfig(min_ops=30, max_ops=40), seed=5)
    block = gen.generate("hotpath")
    machine = paper_2c_8i_1lat()
    sgraph = SchedulingGraph(block, machine)
    dp = DeductionProcess()
    state = SchedulingState(block, machine, sgraph)
    deadline = max(state.estart[e] for e in block.exit_ids) + 6
    result = dp.apply(
        state,
        SetExitDeadlines.from_mapping({e: deadline for e in block.exit_ids}),
        in_place=True,
    )
    assert result.ok
    op_id = next(i for i in block.op_ids if not state.is_fixed(i))
    return dp, state, ScheduleInCycle(op_id, state.estart[op_id])


def test_bench_probe_with_trail(benchmark, probe_context):
    """Apply-then-undo of one decision (the new hot path)."""
    dp, state, decision = probe_context

    def probe():
        mark = state.checkpoint()
        result = dp.apply(state, decision, in_place=True)
        state.rollback(mark)
        return result

    result = benchmark(probe)
    assert result.ok


def test_bench_probe_with_copy(benchmark, probe_context):
    """Deep-copy-then-apply of the same decision (copy-mode probing).

    Note: this is the *current* code base with copy-based probing — it
    still benefits from the indexed dispatch and candidate caches and pays
    for trail recording, so it isolates the probing strategy only.  The
    honest before/after comparison against the seed revision is produced
    by ``scripts/bench_report.py`` (``--baseline-rev``)."""
    dp, state, decision = probe_context

    def probe():
        return dp.apply(state.copy(), decision, in_place=True)

    result = benchmark(probe)
    assert result.ok


@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "linear"])
def test_bench_rule_dispatch(benchmark, probe_context, indexed):
    """Type-indexed dispatch table vs linear ``rule.applies`` scan."""
    _, state, decision = probe_context
    dp = DeductionProcess(indexed_dispatch=indexed)

    def probe():
        mark = state.checkpoint()
        result = dp.apply(state, decision, in_place=True)
        state.rollback(mark)
        return result

    result = benchmark(probe)
    assert result.ok


@pytest.fixture(scope="module")
def workload():
    gen = SuperblockGenerator(GeneratorConfig(min_ops=16, max_ops=32), seed=9)
    return gen.generate_many("perf", max(bench_blocks(), 1)), paper_2c_8i_1lat()


@pytest.mark.parametrize("use_trail", [True, False], ids=["trail", "copy"])
def test_bench_vcs_full_pass(benchmark, workload, use_trail):
    """One full scheduling pass over the synthetic workload, both modes."""
    blocks, machine = workload
    config = VcsConfig(use_trail=use_trail)

    def run():
        return [VirtualClusterScheduler(config).schedule(b, machine) for b in blocks]

    results = benchmark(run)
    assert all(r.ok for r in results)


def test_trail_avoids_every_copy(workload):
    """Bookkeeping check backing the BENCH report's copies-avoided metric:
    the trail run performs zero state copies and at least as many in-place
    probes as the copy run performs deep copies."""
    blocks, machine = workload
    for block in blocks:
        trail = VirtualClusterScheduler(VcsConfig(use_trail=True)).schedule(block, machine)
        copy = VirtualClusterScheduler(VcsConfig(use_trail=False)).schedule(block, machine)
        assert trail.stats["copies"] == 0
        assert copy.stats["probes"] == 0
        assert trail.stats["copies_avoided"] >= copy.stats["copies"]
        assert trail.work == copy.work
