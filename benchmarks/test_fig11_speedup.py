"""Figure 11: speed-up of the proposed technique over CARS.

The paper reports, for each of the 14 applications and each of the three
machine configurations, the speed-up in total dynamic cycles of the proposed
technique over CARS, at compile-time thresholds of 1 and 4 minutes.  Here the
thresholds are deduction-work budgets (see benchmarks/conftest.py); one
benchmark per machine configuration regenerates the full per-application
series and prints it, for both thresholds.

Expected shape (paper): speed-ups >= 1 almost everywhere, small on the
2-cluster machine (~2.5 % mean), largest on the 4-cluster machines
(~9.5 % mean), peaks around 15 %; the large threshold is at least as good as
the small one.
"""

import pytest

from benchmarks.conftest import bench_blocks, bench_budget
from repro.analysis import format_speedup_series, geometric_mean
from repro.analysis.experiments import run_speedup_experiment
from repro.machine import paper_configurations
from repro.workloads import all_profiles, build_suite


@pytest.fixture(scope="module")
def suite():
    return build_suite(all_profiles(), blocks_per_benchmark=bench_blocks())


def _run(suite, machine, budget, runner):
    grouped = run_speedup_experiment([w for w in suite], [machine], work_budget=budget, runner=runner)
    return grouped[machine.name]


@pytest.mark.parametrize("machine", paper_configurations(), ids=lambda m: m.name.replace(" ", "_"))
def test_fig11_speedup_over_cars(benchmark, suite, machine, runner):
    """Regenerate the Figure 11 series for one machine configuration."""
    large = bench_budget()
    small = max(large // 4, 2000)

    results = {}

    def run_both_thresholds():
        results["th_small"] = _run(suite, machine, small, runner)
        results["th_large"] = _run(suite, machine, large, runner)
        return results

    benchmark.pedantic(run_both_thresholds, rounds=1, iterations=1)

    for label, rows in (("threshold = 1m-equiv", results["th_small"]),
                        ("threshold = 4m-equiv", results["th_large"])):
        print(f"\n=== Figure 11 | {machine.name} | {label} ===")
        print(format_speedup_series(rows))

    large_rows = results["th_large"]
    speedups = [row.speedup for row in large_rows]
    mean = geometric_mean(speedups)
    # Shape checks: the proposed technique wins on average and is never
    # catastrophically worse on any single application.
    assert mean >= 1.0, f"mean speed-up {mean:.3f} below 1 on {machine.name}"
    assert min(speedups) >= 0.97
    # The larger threshold can only help (fallbacks are a subset).
    small_mean = geometric_mean([row.speedup for row in results["th_small"]])
    assert mean >= small_mean - 0.02
