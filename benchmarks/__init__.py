"""Benchmark harness reproducing the paper's evaluation figures."""
