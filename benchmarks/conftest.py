"""Shared configuration of the benchmark harness.

Every benchmark reproduces one of the paper's evaluation artefacts (see
DESIGN.md, per-experiment index).  The scale of the synthetic workload is
controlled by two environment variables so the harness can be run quickly in
CI or at a larger scale for a closer look:

* ``REPRO_BENCH_BLOCKS`` — superblocks generated per benchmark (default 2);
* ``REPRO_BENCH_BUDGET`` — the large ("4-minute-equivalent") work budget for
  the proposed scheduler (default 60000 deduction rule firings).

All experiment drivers execute through the parallel batch runner
(``repro.runner``), so ``REPRO_JOBS=N`` shards every figure's block-level
scheduling across N worker processes; the results are byte-identical to
the serial default (``REPRO_JOBS=1``).
"""

import os
import sys

try:  # Installed package (pip install -e .) takes precedence.
    import repro  # noqa: F401
except ImportError:  # Fallback: make the src layout importable in place.
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import pytest

from repro.analysis import EffortThresholds
from repro.config import RuntimeConfig
from repro.runner import BatchScheduler


def bench_blocks() -> int:
    blocks = RuntimeConfig.load().bench_blocks
    return 2 if blocks is None else blocks


def bench_budget() -> int:
    return RuntimeConfig.load().bench_budget


def bench_thresholds() -> EffortThresholds:
    """Work thresholds standing in for the paper's 1 s / 1 min / 4 min."""
    large = bench_budget()
    return EffortThresholds(small=max(large // 30, 500), medium=max(large // 4, 2000), large=large)


@pytest.fixture(scope="session")
def thresholds() -> EffortThresholds:
    return bench_thresholds()


@pytest.fixture(scope="session")
def runner() -> BatchScheduler:
    """The batch runner every figure shards its jobs through
    (worker count from ``REPRO_JOBS``, serial by default)."""
    return BatchScheduler()
