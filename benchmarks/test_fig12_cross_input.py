"""Figure 12: robustness to a different profiling input.

The paper re-evaluates 099.go, 132.ijpeg and 134.perl when the profile used
for scheduling comes from a different input than the one used for execution,
with a 1-minute threshold; the speed-ups keep the same trends, only slightly
reduced (134.perl on the 4-cluster/2-cycle machine drops the most but stays
around 6 %).  The reproduction schedules each block with a perturbed
("train") profile and evaluates the resulting schedules with the reference
profile.
"""

import pytest

from benchmarks.conftest import bench_blocks, bench_budget
from repro.analysis import format_speedup_series, geometric_mean
from repro.analysis.experiments import run_cross_input_experiment, run_speedup_experiment
from repro.machine import paper_configurations
from repro.workloads import build_suite, profile_by_name

FIG12_BENCHMARKS = ["099.go", "132.ijpeg", "134.perl"]


@pytest.fixture(scope="module")
def fig12_suite():
    profiles = [profile_by_name(name) for name in FIG12_BENCHMARKS]
    return build_suite(profiles, blocks_per_benchmark=max(bench_blocks(), 2))


def test_fig12_cross_input_profiling(benchmark, fig12_suite, runner):
    """Regenerate the Figure 12 series (train-profile scheduling, ref-profile
    evaluation) and compare with the same-input speed-ups."""
    machines = paper_configurations()
    budget = max(bench_budget() // 4, 2000)  # the paper uses the 1-minute threshold
    results = {}

    def run():
        results["cross"] = run_cross_input_experiment(
            fig12_suite, machines, work_budget=budget, runner=runner
        )
        results["same"] = run_speedup_experiment(
            fig12_suite, machines, work_budget=budget, runner=runner
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    for machine in machines:
        print(f"\n=== Figure 12 | {machine.name} | train-profile scheduling, ref evaluation ===")
        print(format_speedup_series(results["cross"][machine.name]))

    cross_speedups = [
        row.speedup for machine in machines for row in results["cross"][machine.name]
    ]
    same_speedups = [
        row.speedup for machine in machines for row in results["same"][machine.name]
    ]
    # Shape: the technique still wins on average with a mismatched profile,
    # and the cross-input gains do not exceed the same-input gains by much.
    assert geometric_mean(cross_speedups) >= 0.99
    assert geometric_mean(cross_speedups) <= geometric_mean(same_speedups) + 0.05
