"""Section 5 worked example as a micro-benchmark.

Schedules the paper's Figure 1 superblock on the reduced 2-cluster machine
with both schedulers.  Useful both as a timing micro-benchmark of one full
scheduling pass and as a continuous check that the headline numbers of the
worked example (AWCT 9.4 for the proposed technique vs 9.8 for list
scheduling) hold.
"""

import pytest

from repro.machine import example_2cluster
from repro.scheduler import CarsScheduler, VirtualClusterScheduler
from repro.workloads import paper_figure1_block


def test_bench_vcs_on_paper_example(benchmark):
    block = paper_figure1_block()
    machine = example_2cluster()
    scheduler = VirtualClusterScheduler()

    result = benchmark(lambda: scheduler.schedule(block, machine))
    assert result.awct == pytest.approx(9.4)
    assert result.awct_target_steps == 2


def test_bench_cars_on_paper_example(benchmark):
    block = paper_figure1_block()
    machine = example_2cluster()
    scheduler = CarsScheduler()

    result = benchmark(lambda: scheduler.schedule(block, machine))
    assert result.awct == pytest.approx(9.8)
