"""Ablations of the design choices DESIGN.md calls out.

The paper attributes its gains to three mechanisms: the deduction rules for
partially linked communications (Section 3.3.1), the postponement of the
VC-to-PC mapping until after scheduling (Section 3.2), and the maximum
weight matching used to eliminate out-edges globally (Section 4.4.1.2).  The
ablation benchmark schedules a media-leaning workload slice on the hardest
configuration (4 clusters, 2-cycle non-pipelined bus) with each mechanism
disabled in turn and reports the resulting speed-up over CARS.

Expected shape: the full configuration is at least as good as every ablated
one (small differences are possible because all variants share the CARS
fallback)."""

import pytest

from benchmarks.conftest import bench_blocks, bench_budget
from repro.analysis import format_table, geometric_mean
from repro.analysis.experiments import run_workload
from repro.machine import paper_4c_16i_2lat
from repro.scheduler import VcsConfig
from repro.workloads import build_suite, profile_by_name

ABLATION_BENCHMARKS = ["mpeg2dec", "epicenc", "099.go"]


@pytest.fixture(scope="module")
def ablation_suite():
    profiles = [profile_by_name(name) for name in ABLATION_BENCHMARKS]
    return build_suite(profiles, blocks_per_benchmark=max(bench_blocks(), 2))


def _variants(budget):
    return {
        "full": VcsConfig(work_budget=budget),
        "A1 no PLC rules": VcsConfig(work_budget=budget, enable_plc=False),
        "A2 eager mapping": VcsConfig(work_budget=budget, eager_mapping=True),
        "A3 no matching": VcsConfig(work_budget=budget, use_matching=False),
    }


def test_ablation_design_choices(benchmark, ablation_suite, runner):
    machine = paper_4c_16i_2lat()
    budget = max(bench_budget() // 2, 4000)
    outcome = {}

    def run():
        table = {}
        for label, config in _variants(budget).items():
            speedups = []
            fallbacks = 0
            blocks = 0
            for workload in ablation_suite:
                record = run_workload(workload, machine, vcs_config=config, runner=runner)
                comparison = record.comparison()
                speedups.append(comparison.speedup)
                fallbacks += sum(1 for b in comparison.blocks if b.proposed_fallback)
                blocks += comparison.n_blocks
            table[label] = (geometric_mean(speedups), fallbacks, blocks)
        outcome.update(table)
        return table

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label, f"{mean:.4f}", f"{fallbacks}/{blocks}"]
        for label, (mean, fallbacks, blocks) in outcome.items()
    ]
    print("\n=== Ablations | 4clust 1b 2lat | geometric-mean speed-up over CARS ===")
    print(format_table(["configuration", "speed-up", "CARS fallbacks"], rows))

    full_mean = outcome["full"][0]
    assert full_mean >= 1.0
    for label, (mean, _, _) in outcome.items():
        assert mean >= 0.97, f"{label} regressed far below CARS"
    # The full configuration should not lose noticeably to any ablation.
    assert all(full_mean >= mean - 0.03 for label, (mean, _, _) in outcome.items())
