"""Figure 10: compilation-time comparison between CARS and the proposed
technique.

The paper reports the percentage of superblocks each scheduler compiles
within 1 second, 1 minute and 4 minutes: CARS finishes 92-95 % within one
second, while the proposed technique compiles 70-72.5 % within a second and
leaves under 10 % beyond a minute.  Wall-clock seconds are host dependent, so
the reproduction uses the deterministic work counter (deduction rule firings
for the proposed technique, placement attempts for CARS) with three budget
thresholds; the shape to look for is the same: CARS essentially always fits
the smallest budget, the proposed technique needs the larger ones for a tail
of blocks, and that tail grows with the cluster count.
"""

import pytest

from benchmarks.conftest import bench_blocks
from repro.analysis import format_compile_time_table
from repro.analysis.experiments import run_compile_time_experiment
from repro.machine import paper_configurations
from repro.workloads import all_profiles, build_suite


@pytest.fixture(scope="module")
def suite():
    return build_suite(all_profiles(), blocks_per_benchmark=bench_blocks())


def test_fig10_compile_effort_distribution(benchmark, suite, thresholds, runner):
    """Regenerate the Figure 10 table for all three machine configurations."""
    machines = paper_configurations()
    stats = {}

    def run():
        stats["rows"] = run_compile_time_experiment(suite, machines, thresholds, runner=runner)
        return stats["rows"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = stats["rows"]

    print("\n=== Figure 10 | fraction of superblocks compiled within each work budget ===")
    print(format_compile_time_table(rows, thresholds))

    cars_rows = [r for r in rows if r.scheduler == "CARS"]
    vcs_rows = [r for r in rows if r.scheduler == "VCS"]
    # CARS always fits even the smallest budget.
    for row in cars_rows:
        assert row.fraction_within(thresholds.small) == pytest.approx(1.0)
    # The proposed technique needs more effort: within the smallest budget it
    # compiles fewer blocks than CARS, within the largest nearly all.
    for row in vcs_rows:
        assert row.fraction_within(thresholds.small) <= 1.0
        assert row.fraction_within(thresholds.large) >= 0.6
    assert any(
        row.fraction_within(thresholds.small) < 1.0 for row in vcs_rows
    ), "expected at least some blocks to exceed the smallest budget"
