#!/usr/bin/env python3
"""Walk through the paper's Section 5 example step by step.

Reproduces, with the library's own objects, the sequence the paper narrates
for the Figure 1 superblock on the reduced 2-cluster machine:

* the AWCT of the naive minimum schedule (8.4),
* the deduction that B1 cannot be scheduled in cycle 6,
* the forced virtual cluster {I0, I3, B0} at the 9.1 target,
* the failure of the 9.1 target and the success of 9.4,
* the final schedule and its comparison with a CARS-style list scheduler.

Run with:  python examples/paper_example.py
"""

from repro import (
    CarsScheduler,
    DeductionProcess,
    SchedulingGraph,
    SchedulingState,
    VirtualClusterScheduler,
    awct,
    example_2cluster,
    min_awct,
    paper_figure1_block,
)
from repro.deduction import SetExitDeadlines

I0, I1, I2, I3, B0, I4, B1 = range(7)


def main():
    block = paper_figure1_block()
    machine = example_2cluster()
    print("The Figure 1 superblock:")
    for op in block.operations:
        print("  ", op)
    print()

    print(f"Section 2.2: AWCT with B0@4, B1@6 = {awct(block, {B0: 4, B1: 6}):.1f}")
    print(f"minAWCT (dependences + resources only) = {min_awct(block, machine):.1f}\n")

    sgraph = SchedulingGraph(block, machine)
    print(f"Scheduling graph: {len(sgraph)} edges, {sgraph.n_combinations()} combinations")
    print("  combinations between the two branches: "
          f"{[c.distance for c in sgraph.combinations(B0, B1)]}\n")

    dp = DeductionProcess()

    print("Deduction at deadlines (B0@4, B1@6) — the paper shows this is impossible:")
    state = SchedulingState(block, machine, sgraph)
    result = dp.apply(state, SetExitDeadlines.from_mapping({B0: 4, B1: 6}))
    print(f"  -> contradiction: {result.contradiction}\n")

    print("Deduction at deadlines (B0@4, B1@7) — Figure 9.c:")
    result = dp.apply(SchedulingState(block, machine, sgraph),
                      SetExitDeadlines.from_mapping({B0: 4, B1: 7}))
    state = result.state
    print(f"  virtual clusters: {state.vcg.vcs()}")
    print("  bounds: " + ", ".join(
        f"{block.op(i).name}:[{state.estart[i]},{int(state.lstart[i])}]" for i in block.op_ids))
    print("  (I0, I3 and B0 are forced into one virtual cluster: no copy fits between them)\n")

    proposed = VirtualClusterScheduler().schedule(block, machine)
    baseline = CarsScheduler().schedule(block, machine)
    print(f"Proposed technique: AWCT {proposed.awct:.1f} "
          f"after {proposed.awct_target_steps} AWCT targets "
          f"({proposed.work} deduction rule firings)")
    print(proposed.schedule.as_table())
    print()
    print(f"CARS-style list scheduling: AWCT {baseline.awct:.1f}")
    print(baseline.schedule.as_table())
    print()
    print(f"Speed-up on this block: {baseline.awct / proposed.awct:.3f}x "
          "(the paper reports 9.4 vs a more constrained list schedule)")


if __name__ == "__main__":
    main()
