#!/usr/bin/env python3
"""SpecInt-style branchy superblocks: the string-search kernel plus a small
synthetic 099.go population.

Shows the behaviour the paper reports for SpecInt on the 2-cluster machine:
the schedule is so constrained that list scheduling is already close to the
proposed technique, while the 4-cluster machines leave more room.

Run with:  python examples/spec_superblock.py
"""

from repro import (
    CarsScheduler,
    VirtualClusterScheduler,
    VcsConfig,
    build_benchmark,
    paper_configurations,
    profile_by_name,
    string_search_kernel,
)


def main():
    print("String-search kernel (three exits, 45%/30%/25%):\n")
    block = string_search_kernel()
    for machine in paper_configurations():
        baseline = CarsScheduler().schedule(block, machine)
        proposed = VirtualClusterScheduler().schedule(block, machine)
        print(
            f"  {machine.name:<16} CARS {baseline.awct:6.2f}   VCS {proposed.awct:6.2f}   "
            f"speed-up {baseline.awct / proposed.awct:.3f}x"
        )

    print("\nSynthetic 099.go population (6 superblocks):\n")
    workload = build_benchmark(profile_by_name("099.go").scaled(6))
    vcs = VirtualClusterScheduler(VcsConfig(work_budget=60_000))
    cars = CarsScheduler()
    for machine in paper_configurations():
        total_cars = total_vcs = 0.0
        fallbacks = 0
        for block in workload:
            baseline = cars.schedule(block, machine)
            proposed = vcs.schedule(block, machine)
            total_cars += baseline.total_cycles
            total_vcs += proposed.total_cycles
            fallbacks += proposed.fallback_used
        print(
            f"  {machine.name:<16} total cycles: CARS {total_cars:12.0f}  VCS {total_vcs:12.0f}  "
            f"speed-up {total_cars / total_vcs:.3f}x  (CARS fallbacks: {fallbacks}/{workload.n_blocks})"
        )


if __name__ == "__main__":
    main()
