#!/usr/bin/env python3
"""Architecture sweep: how cluster count and bus latency change the picture.

Schedules the dot-product kernel on machines from 1 to 4 clusters with 1- and
2-cycle buses, printing the AWCT of both schedulers.  Beyond the paper's
three configurations, this explores the design space the paper's clustering
argument motivates: more clusters expose more issue width but make
communication latency the limiter.

Run with:  python examples/arch_sweep.py
"""

from repro import (
    BusConfig,
    CarsScheduler,
    ClusterConfig,
    ClusteredMachine,
    VirtualClusterScheduler,
    dot_product_kernel,
    min_awct,
)


def machine(n_clusters: int, bus_latency: int, pipelined: bool = True) -> ClusteredMachine:
    return ClusteredMachine(
        name=f"{n_clusters}c bus{bus_latency}{'p' if pipelined else 'np'}",
        clusters=tuple(ClusterConfig.uniform(1) for _ in range(n_clusters)),
        bus=BusConfig(count=1, latency=bus_latency, pipelined=pipelined),
    )


def main():
    block = dot_product_kernel(width=4)
    print(f"Kernel: {block.name} ({block.size} operations)\n")
    header = f"{'machine':<12} {'minAWCT':>8} {'CARS':>8} {'VCS':>8} {'speed-up':>9} {'VCS copies':>11}"
    print(header)
    print("-" * len(header))
    sweeps = [
        machine(1, 1),
        machine(2, 1),
        machine(2, 2, pipelined=False),
        machine(4, 1),
        machine(4, 2, pipelined=False),
    ]
    for target in sweeps:
        baseline = CarsScheduler().schedule(block, target)
        proposed = VirtualClusterScheduler().schedule(block, target)
        print(
            f"{target.name:<12} {min_awct(block, target):>8.2f} "
            f"{baseline.awct:>8.2f} {proposed.awct:>8.2f} "
            f"{baseline.awct / proposed.awct:>8.3f}x {proposed.schedule.n_communications:>11}"
        )
    print(
        "\nMore clusters lower the resource bound but raise communication cost;\n"
        "the proposed technique keeps the advantage as the bus gets slower."
    )


if __name__ == "__main__":
    main()
