#!/usr/bin/env python3
"""Quickstart: build a superblock, schedule it two ways, compare.

Run with:  python examples/quickstart.py
"""

from repro import (
    CarsScheduler,
    OpClass,
    SuperblockBuilder,
    VirtualClusterScheduler,
    paper_2c_8i_1lat,
    validate_schedule,
)


def build_block():
    """A small superblock: two loads feed an add chain with an early exit."""
    b = SuperblockBuilder("quickstart/block")
    b.add_op("load", OpClass.MEM, dests=["a"], srcs=["ptr"], latency=2)
    b.add_op("load", OpClass.MEM, dests=["b"], srcs=["ptr2"], latency=2)
    b.add_op("add", OpClass.INT, dests=["s"], srcs=["a", "b"], latency=1)
    b.add_exit(probability=0.2, srcs=["s"], latency=1)          # early out
    b.add_op("mul", OpClass.INT, dests=["p"], srcs=["s", "a"], latency=2)
    b.add_op("sub", OpClass.INT, dests=["q"], srcs=["p", "b"], latency=1)
    b.add_exit(probability=0.8, srcs=["q"], latency=1)          # fall-through
    return b.build(execution_count=1000)


def main():
    block = build_block()
    machine = paper_2c_8i_1lat()
    print(f"Superblock: {block}")
    print(f"Machine:    {machine}\n")

    baseline = CarsScheduler().schedule(block, machine)
    proposed = VirtualClusterScheduler().schedule(block, machine)

    for result in (baseline, proposed):
        report = validate_schedule(result.schedule)
        status = "valid" if report.ok else f"INVALID: {report.errors}"
        print(f"--- {result.scheduler} ---  AWCT={result.awct:.3f}  ({status})")
        print(result.schedule.as_table())
        print()

    speedup = baseline.total_cycles / proposed.total_cycles
    print(f"Speed-up of the proposed technique over CARS: {speedup:.3f}x")


if __name__ == "__main__":
    main()
