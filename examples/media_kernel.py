#!/usr/bin/env python3
"""MediaBench-style kernels on the paper's 4-cluster machines.

Schedules the FIR and DCT-butterfly kernels on all three paper
configurations and shows where the proposed technique wins: wide media code
on four clusters, especially with the slow non-pipelined bus.

Run with:  python examples/media_kernel.py
"""

from repro import (
    CarsScheduler,
    VirtualClusterScheduler,
    dct_butterfly_kernel,
    fir_kernel,
    min_awct,
    paper_configurations,
    validate_schedule,
)


def main():
    kernels = [fir_kernel(taps=4), dct_butterfly_kernel()]
    vcs = VirtualClusterScheduler()
    cars = CarsScheduler()

    header = f"{'kernel':<18} {'machine':<16} {'minAWCT':>8} {'CARS':>8} {'VCS':>8} {'speed-up':>9} {'copies':>7}"
    print(header)
    print("-" * len(header))
    for block in kernels:
        for machine in paper_configurations():
            baseline = cars.schedule(block, machine)
            proposed = vcs.schedule(block, machine)
            assert validate_schedule(baseline.schedule).ok
            assert validate_schedule(proposed.schedule).ok
            print(
                f"{block.name:<18} {machine.name:<16} "
                f"{min_awct(block, machine):>8.2f} {baseline.awct:>8.2f} {proposed.awct:>8.2f} "
                f"{baseline.awct / proposed.awct:>8.3f}x {proposed.schedule.n_communications:>7}"
            )
    print()

    # Show one schedule in full: the DCT butterfly on the 4-cluster machine.
    block = kernels[1]
    machine = paper_configurations()[1]
    result = vcs.schedule(block, machine)
    print(f"Proposed schedule of {block.name} on {machine.name}:")
    print(result.schedule.as_table())
    print(f"cluster load: {result.schedule.cluster_load()}")


if __name__ == "__main__":
    main()
